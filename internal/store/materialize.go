package store

import (
	"context"
	"fmt"

	"lcakp/internal/core"
	"lcakp/internal/oracle"
	"lcakp/internal/rng"
)

// FromRule converts a derived core.Rule into the artifact's rule
// section. Large indices come out of LargeIndices(), so the encoding
// is canonical regardless of the map's iteration order.
func FromRule(r core.Rule) RuleSection {
	idx := r.LargeIndices()
	large := make([]uint32, len(idx))
	for k, i := range idx {
		large[k] = uint32(i)
	}
	thresholds := make([]float64, len(r.Thresholds))
	copy(thresholds, r.Thresholds)
	return RuleSection{
		ESmall:     r.ESmall,
		Singleton:  r.Singleton,
		Large:      large,
		Thresholds: thresholds,
	}
}

// ToRule reconstructs the core.Rule a rule section encodes, under the
// artifact's epsilon. The round trip FromRule → ToRule preserves the
// decision function exactly (core.Rule.Equal), which is what lets a
// process that only holds the artifact keep answering queries outside
// a stale cache — or re-serve the rule to a new replica.
func (rs RuleSection) ToRule(epsilon float64) core.Rule {
	largeIn := make(map[int]bool, len(rs.Large))
	for _, i := range rs.Large {
		largeIn[int(i)] = true
	}
	thresholds := make([]float64, len(rs.Thresholds))
	copy(thresholds, rs.Thresholds)
	return core.Rule{
		Epsilon:    epsilon,
		LargeIn:    largeIn,
		ESmall:     rs.ESmall,
		Singleton:  rs.Singleton,
		Thresholds: thresholds,
	}
}

// MaterializeRule runs one rule derivation under the canonical
// materialization randomness stream — a pure function of the shared
// seed, not of process state. Ordinary queries deliberately vary their
// fresh sampling randomness per run (consistency never depends on it);
// materialization pins it so that every process derives not just an
// equal rule w.h.p. but the *identical* rule deterministically,
// thresholds included, which is what makes artifact bytes reproducible
// across processes.
func MaterializeRule(ctx context.Context, lca *core.LCAKP) (core.Rule, error) {
	fresh := rng.New(lca.Params().Seed).Derive("lcakp", "materialize")
	return lca.ComputeRule(ctx, fresh)
}

// Materialize evaluates a derived rule over every item of the instance
// and encodes the complete solution as an artifact addressed by
// (instance, seed). This is the Rubinfeld–Tamir–Vardi–Xie
// preprocessing step made explicit: n oracle probes paid once, after
// which every lookup anywhere in the fleet is a bit probe. The scan is
// deterministic (index order, one probe per item), so two processes
// materializing the same (I, r) emit bit-identical artifacts —
// TestMaterializeDeterministicBytes holds this against the encoder.
//
//lint:coldpath materialization is offline preprocessing, never on the query path
func Materialize(ctx context.Context, access oracle.Access, rule core.Rule, instance, seed uint64) (*Artifact, error) {
	return MaterializeEpoch(ctx, access, rule, instance, seed, 0)
}

// MaterializeEpoch is Materialize for one sealed epoch: the scan runs
// over the epoch's instance I_e and the artifact carries (instance,
// seed, epoch) as its content address. Epoch 0 produces the exact
// pre-epoch (format version 1) bytes.
//
//lint:coldpath materialization is offline preprocessing, never on the query path
func MaterializeEpoch(ctx context.Context, access oracle.Access, rule core.Rule, instance, seed, epoch uint64) (*Artifact, error) {
	n := access.N()
	answers := make([]bool, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("store: materialize item %d/%d: %w", i, n, err)
		}
		it, err := access.QueryItem(ctx, i)
		if err != nil {
			return nil, fmt.Errorf("store: materialize item %d/%d: %w", i, n, err)
		}
		answers[i] = rule.Decide(i, it)
	}
	return NewArtifactEpoch(instance, seed, epoch, rule.Epsilon, answers, FromRule(rule))
}
