package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lcakp/internal/core"
	"lcakp/internal/engine"
	"lcakp/internal/oracle"
	"lcakp/internal/workload"
)

var testParams = core.Params{Epsilon: 0.45, Seed: 2}

// buildLCA constructs an independent LCA over the shared test
// workload; each call mimics a separate process deriving from scratch.
func buildLCA(t testing.TB, n int) (*core.LCAKP, oracle.Access) {
	t.Helper()
	gen, err := workload.Generate(workload.Spec{Name: "uniform", N: n, Seed: 17})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	acc, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	lca, err := core.NewLCAKP(acc, testParams)
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	return lca, acc
}

// materializeTest derives the canonical rule and materializes the full
// artifact for the shared test workload.
func materializeTest(t testing.TB, n int, instance uint64) (*Artifact, core.Rule, oracle.Access) {
	t.Helper()
	lca, acc := buildLCA(t, n)
	rule, err := MaterializeRule(context.Background(), lca)
	if err != nil {
		t.Fatalf("MaterializeRule: %v", err)
	}
	a, err := Materialize(context.Background(), acc, rule, instance, testParams.Seed)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return a, rule, acc
}

func TestArtifactRoundTrip(t *testing.T) {
	const n = 400
	a, rule, acc := materializeTest(t, n, 7)

	if a.Instance != 7 || a.Seed != testParams.Seed || a.N != n {
		t.Fatalf("artifact header = (i%d, s%d, n%d), want (i7, s%d, n%d)",
			a.Instance, a.Seed, a.N, testParams.Seed, n)
	}
	if a.Epsilon != testParams.Epsilon {
		t.Fatalf("artifact epsilon = %v, want %v", a.Epsilon, testParams.Epsilon)
	}

	// Every answer bit must equal the rule's decision for that item.
	for i := 0; i < n; i++ {
		it, err := acc.QueryItem(context.Background(), i)
		if err != nil {
			t.Fatalf("QueryItem(%d): %v", i, err)
		}
		want := rule.Decide(i, it)
		got, err := a.InSolution(i)
		if err != nil {
			t.Fatalf("InSolution(%d): %v", i, err)
		}
		if got != want {
			t.Fatalf("artifact bit %d = %v, rule says %v", i, got, want)
		}
	}
	if _, err := a.InSolution(n); err == nil {
		t.Error("InSolution past range succeeded")
	}
	if _, err := a.InSolution(-1); err == nil {
		t.Error("InSolution(-1) succeeded")
	}

	// The rule section must round-trip to an Equal decision function.
	rs, err := a.Rule()
	if err != nil {
		t.Fatalf("Rule: %v", err)
	}
	back := rs.ToRule(a.Epsilon)
	if !back.Equal(rule) {
		t.Fatalf("rule round trip lost equality: %+v vs %+v", back, rule)
	}
	if len(back.Thresholds) != len(rule.Thresholds) {
		t.Fatalf("thresholds lost: %d vs %d", len(back.Thresholds), len(rule.Thresholds))
	}

	// Disk round trip through the atomic writer.
	path := filepath.Join(t.TempDir(), "artifact.lcas")
	if err := a.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("bytes changed across the disk round trip")
	}
	// Answers() agrees with InSolution.
	ans := b.Answers()
	for i := 0; i < n; i++ {
		got, _ := b.InSolution(i)
		if ans[i] != got {
			t.Fatalf("Answers[%d] = %v, InSolution = %v", i, ans[i], got)
		}
	}
}

// TestMaterializeDeterministicBytes is the determinism guarantee the
// peer tier rests on: two independent processes (modeled as two
// independently constructed LCAs over the same (I, r)) must emit
// bit-identical artifacts.
func TestMaterializeDeterministicBytes(t *testing.T) {
	const n = 400
	a, _, _ := materializeTest(t, n, 9)
	b, _, _ := materializeTest(t, n, 9)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("independent materializations of the same (I, r) differ")
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("checksums differ")
	}
}

// TestArtifactCorruptionRejected flips every byte of a small artifact
// one at a time: no single-byte corruption may survive validation.
func TestArtifactCorruptionRejected(t *testing.T) {
	a, _, _ := materializeTest(t, 64, 3)
	orig := a.Bytes()
	for off := 0; off < len(orig); off++ {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xff
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flipping byte %d survived validation", off)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadVersion) {
			t.Fatalf("flipping byte %d: unexpected error class: %v", off, err)
		}
	}
	// Truncations must fail too.
	for _, cut := range []int{1, trailerSize, len(orig) / 2, len(orig) - 1} {
		if _, err := Decode(orig[:len(orig)-cut]); err == nil {
			t.Fatalf("truncating %d bytes survived validation", cut)
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
}

func TestStoreLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := New(dir, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, rule, acc := materializeTest(t, 200, 11)
	id := engine.TenantID{Instance: 11, Seed: testParams.Seed}

	// Absent artifact: Lookup says no coverage, Get says ErrNotFound.
	if _, ok, err := s.Lookup(ctx, id, 0); ok || err != nil {
		t.Fatalf("Lookup on empty store = (ok=%v, err=%v)", ok, err)
	}
	if _, err := s.Get(ctx, id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	if s.Has(id) {
		t.Fatal("Has on empty store")
	}

	if err := s.Put(ctx, a); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !s.Has(id) {
		t.Fatal("Has after Put = false")
	}
	for i := 0; i < a.N; i++ {
		it, _ := acc.QueryItem(ctx, i)
		in, ok, err := s.Lookup(ctx, id, i)
		if err != nil || !ok {
			t.Fatalf("Lookup(%d) = (ok=%v, err=%v)", i, ok, err)
		}
		if want := rule.Decide(i, it); in != want {
			t.Fatalf("Lookup(%d) = %v, rule says %v", i, in, want)
		}
	}
	// Out-of-range item: covered artifact, uncovered index.
	if _, ok, err := s.Lookup(ctx, id, a.N); ok || err != nil {
		t.Fatalf("Lookup past range = (ok=%v, err=%v)", ok, err)
	}

	// A second store over the same directory sees the artifact (cold
	// open path) — the restart scenario.
	s2, err := New(dir, 2)
	if err != nil {
		t.Fatalf("New(restart): %v", err)
	}
	got, err := s2.Get(ctx, id)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if !bytes.Equal(got.Bytes(), a.Bytes()) {
		t.Fatal("artifact changed across restart")
	}
	ids, err := s2.List()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("List = (%v, %v), want [%v]", ids, err, id)
	}

	// PutBytes is the backfill path: raw bytes in, validated artifact
	// persisted.
	s3, err := New(t.TempDir(), 2)
	if err != nil {
		t.Fatalf("New(backfill): %v", err)
	}
	if _, err := s3.PutBytes(ctx, a.Bytes()); err != nil {
		t.Fatalf("PutBytes: %v", err)
	}
	if !s3.Has(id) {
		t.Fatal("backfilled artifact absent")
	}
	corrupt := append([]byte(nil), a.Bytes()...)
	corrupt[len(corrupt)/2] ^= 1
	if _, err := s3.PutBytes(ctx, corrupt); err == nil {
		t.Fatal("PutBytes accepted corrupt bytes")
	}

	if st := s.Stats(); st.Writes != 1 || st.Lookups == 0 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Put(ctx, a); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Get(ctx, id); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}
}

// TestStoreRejectsCorruptFile corrupts the on-disk artifact and
// asserts the store reports it (rather than treating it as absent or
// serving garbage).
func TestStoreRejectsCorruptFile(t *testing.T) {
	ctx := context.Background()
	s, err := New(t.TempDir(), 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, _, _ := materializeTest(t, 100, 5)
	id := engine.TenantID{Instance: 5, Seed: testParams.Seed}
	if err := s.Put(ctx, a); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Corrupt one byte of the answer section on disk, then reopen
	// through a fresh store (the first store holds it resident).
	path := s.Path(id)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw[headerSizeV1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	s2, err := New(s.Dir(), 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s2.Get(ctx, id); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over corrupt file: %v, want ErrCorrupt", err)
	}
	if _, _, err := s2.Lookup(ctx, id, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Lookup over corrupt file: %v, want ErrCorrupt", err)
	}
	if st := s2.Stats(); st.Corrupt == 0 {
		t.Fatalf("Stats.Corrupt = 0 after rejected open: %+v", st)
	}
}

// TestStoreRejectsMisplacedArtifact writes tenant A's bytes at tenant
// B's address: the content address inside the file wins.
func TestStoreRejectsMisplacedArtifact(t *testing.T) {
	ctx := context.Background()
	s, err := New(t.TempDir(), 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, _, _ := materializeTest(t, 100, 5)
	other := engine.TenantID{Instance: 6, Seed: testParams.Seed}
	if err := a.WriteFile(s.Path(other)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := s.Get(ctx, other); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on misplaced artifact: %v, want ErrCorrupt", err)
	}
}

// TestStoreEviction holds the resident budget while keeping every
// artifact servable (evicted handles re-open from disk).
func TestStoreEviction(t *testing.T) {
	ctx := context.Background()
	s, err := New(t.TempDir(), 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var ids []engine.TenantID
	for inst := uint64(1); inst <= 4; inst++ {
		a, _, _ := materializeTest(t, 50, inst)
		if err := s.Put(ctx, a); err != nil {
			t.Fatalf("Put(i%d): %v", inst, err)
		}
		ids = append(ids, engine.TenantID{Instance: inst, Seed: testParams.Seed})
	}
	st := s.Stats()
	if st.Resident > 2 {
		t.Fatalf("resident %d exceeds budget 2", st.Resident)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded over budget")
	}
	// Every artifact still answers (evicted ones re-open).
	for _, id := range ids {
		if _, ok, err := s.Lookup(ctx, id, 0); !ok || err != nil {
			t.Fatalf("Lookup(%v) after eviction = (ok=%v, err=%v)", id, ok, err)
		}
	}
}

// BenchmarkStoreLookup is the hot-path guarantee: a resident-artifact
// point lookup allocates nothing (pinned in ALLOC_BUDGET.json).
func BenchmarkStoreLookup(b *testing.B) {
	ctx := context.Background()
	s, err := New(b.TempDir(), 4)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	a, _, _ := materializeTest(b, 200, 11)
	if err := s.Put(ctx, a); err != nil {
		b.Fatalf("Put: %v", err)
	}
	id := engine.TenantID{Instance: 11, Seed: testParams.Seed}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Lookup(ctx, id, i%a.N); !ok || err != nil {
			b.Fatalf("Lookup = (ok=%v, err=%v)", ok, err)
		}
	}
}
