// Package store is the materialized solution store: durable,
// content-addressed artifacts holding a derived solution C(I, r) — the
// full answer bitset plus the local decision rule it was materialized
// from — in a compact versioned binary encoding.
//
// The paper makes C(I, r) a pure function of the instance and the
// shared seed (Definition 2.2, Theorem 4.1), so a solution derived
// once can be persisted and served forever without re-derivation:
// there is nothing to invalidate, refresh, or reconcile. An artifact
// is therefore immutable by construction — the serving-side analogue
// of the space-efficient LCA line (Alon, Rubinfeld, Vardi, Xie),
// where bounded persistent state replaces recomputation, and of the
// Rubinfeld–Tamir–Vardi–Xie query/preprocessing trade-off: the
// artifact is the preprocessing, paid once, and every subsequent
// lookup is O(1).
//
// Layout (format versions 1 and 2, all integers little-endian):
//
//	[0:4)    magic "LCAS"
//	[4:6)    format version (u16)
//	[6:8)    reserved (0)
//	[8:16)   instance hash (u64)   ┐ the content address: the tenant
//	[16:24)  seed (u64)            ┘ (instance, seed) naming C(I, r)
//	[24:32)  epsilon (f64 bits)
//	[32:36)  item count n (u32)
//	[36:40)  answer section offset (u32)
//	[40:44)  answer section length (u32)
//	[44:48)  rule section offset (u32)
//	[48:52)  rule section length (u32)
//	[52:60)  epoch (u64) — format version 2 only, never zero
//	answers  ceil(n/8) bytes, bit i = item i's membership (LSB first)
//	rule     the decision-rule section (see appendRuleSection)
//	trailer  CRC-64/ECMA over everything before it (u64)
//
// Version 2 extends the content address with the epoch: under item
// churn the solution is a pure function of (I_e, r), so (instance,
// seed, epoch) names one immutable value exactly as (instance, seed)
// did for a fixed instance. Epoch 0 — the implicit pre-churn epoch —
// always encodes as version 1, so a tenant that never churns produces
// bytes indistinguishable from a pre-epoch build, the encoding stays
// canonical (one epoch, one byte image), and old readers keep
// accepting every artifact a static fleet emits.
//
// The section offsets live in the header so a reader can serve point
// lookups straight off the raw bytes — a byte slice, an mmap'd region,
// or a section shipped over the wire — without decoding the whole
// artifact: answer bit i is one shift and mask away from the header.
// The encoding is canonical (sorted large indices, fixed field order),
// so two processes materializing the same (I, r) produce bit-identical
// files — the property TestMaterializeDeterministicBytes pins and the
// peer tier relies on when it ships artifacts between gateways.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Format constants.
const (
	// FormatVersion is the artifact encoding version this build writes
	// for epoch-0 artifacts — the exact pre-epoch format.
	FormatVersion = 1
	// FormatVersionEpoch is the encoding for sealed epochs (epoch > 0):
	// version 1 plus the epoch field. This build reads both.
	FormatVersionEpoch = 2
	// headerSizeV1 and headerSizeV2 are the fixed encoded header
	// lengths of the two format versions.
	headerSizeV1 = 52
	headerSizeV2 = 60
	// trailerSize is the trailing checksum length.
	trailerSize = 8
	// magic opens every artifact.
	magic = "LCAS"
	// MaxArtifactSize bounds one artifact file (and one artifact
	// shipped over the wire). A billion-item answer bitset is ~125 MB;
	// the bound exists to reject corrupt length fields, not real
	// artifacts.
	MaxArtifactSize = 256 << 20
)

// Artifact errors.
var (
	// ErrCorrupt indicates an artifact whose bytes fail structural or
	// checksum validation. A corrupt artifact is never served from:
	// the store treats it exactly like an absent one (and says so).
	ErrCorrupt = errors.New("store: corrupt artifact")
	// ErrBadVersion indicates an artifact written by an incompatible
	// format version.
	ErrBadVersion = errors.New("store: unsupported artifact format version")
	// ErrNotFound indicates no artifact exists for the requested
	// content address.
	ErrNotFound = errors.New("store: artifact not found")
)

// crcTable is the CRC-64/ECMA table used for the trailing checksum.
var crcTable = crc64.MakeTable(crc64.ECMA)

// RuleSection is the decision-rule half of an artifact: everything
// core.Rule carries, in plain exportable form. The store keeps its own
// struct so the artifact encoding depends only on the stdlib; the core
// adapters live in materialize.go.
type RuleSection struct {
	// ESmall is the small-item efficiency threshold, -1 when no small
	// items are included.
	ESmall float64
	// Singleton marks the first-excluded-item solution.
	Singleton bool
	// Large holds the sorted original indices of included large items.
	Large []uint32
	// Thresholds is the Equally Partitioning Sequence the rule was
	// derived from (diagnostic, preserved for forensics).
	Thresholds []float64
}

// Artifact is one decoded materialized solution. The answer section is
// served straight from the underlying bytes (data may alias a file
// read, an mmap'd region, or a wire payload); nothing is re-decoded
// per lookup.
type Artifact struct {
	// Instance, Seed, and Epoch are the content address: the epoch
	// (I_e, r) of the tenant whose solution this is. Epoch 0 is the
	// implicit pre-churn epoch (format version 1 on the wire).
	Instance uint64
	Seed     uint64
	Epoch    uint64
	// Epsilon is the ε the solution was derived under.
	Epsilon float64
	// N is the item count.
	N int

	// data is the complete encoded artifact (header through trailer).
	data []byte
	// answers aliases the answer section inside data.
	answers []byte
}

// Bytes returns the artifact's complete canonical encoding — the exact
// bytes on disk and on the wire. Callers must not mutate the slice.
func (a *Artifact) Bytes() []byte { return a.data }

// Size returns the encoded size in bytes.
func (a *Artifact) Size() int { return len(a.data) }

// InSolution reports item i's membership bit. It reads one byte of the
// mapped answer section; out-of-range indices report an error (the
// artifact cannot answer for items it was not materialized over).
func (a *Artifact) InSolution(i int) (bool, error) {
	if i < 0 || i >= a.N {
		return false, fmt.Errorf("store: item %d out of artifact range [0, %d)", i, a.N)
	}
	return a.answers[i>>3]&(1<<(i&7)) != 0, nil
}

// Contains reports whether item i is inside the artifact's range.
func (a *Artifact) Contains(i int) bool { return i >= 0 && i < a.N }

// Answers decodes the full answer section into a bool slice (one entry
// per item). It exists for warm-up and tests; point lookups should use
// InSolution, which does not allocate.
func (a *Artifact) Answers() []bool {
	out := make([]bool, a.N)
	for i := range out {
		out[i] = a.answers[i>>3]&(1<<(i&7)) != 0
	}
	return out
}

// Checksum returns the artifact's trailing CRC-64/ECMA value — a
// convenient fingerprint for determinism checks and logs.
func (a *Artifact) Checksum() uint64 {
	return binary.LittleEndian.Uint64(a.data[len(a.data)-trailerSize:])
}

// Rule decodes the artifact's rule section.
func (a *Artifact) Rule() (RuleSection, error) {
	off := int(binary.LittleEndian.Uint32(a.data[44:48]))
	length := int(binary.LittleEndian.Uint32(a.data[48:52]))
	return decodeRuleSection(a.data[off : off+length])
}

// NewArtifact encodes a materialized solution: the answer bit per item
// plus the rule it was derived from, under the (instance, seed)
// content address — the epoch-0 (fixed-instance) form, bit-identical
// to what pre-epoch builds wrote.
func NewArtifact(instance, seed uint64, epsilon float64, answers []bool, rule RuleSection) (*Artifact, error) {
	return NewArtifactEpoch(instance, seed, 0, epsilon, answers, rule)
}

// NewArtifactEpoch encodes a materialized solution of one sealed epoch
// under the (instance, seed, epoch) content address. Epoch 0 emits
// format version 1 (the pre-epoch encoding, byte for byte); any other
// epoch emits version 2. The encoding is canonical — Large is sorted
// here, every field has a fixed offset, one version per epoch value —
// so equal inputs yield bit-identical artifacts wherever they are
// produced.
func NewArtifactEpoch(instance, seed, epoch uint64, epsilon float64, answers []bool, rule RuleSection) (*Artifact, error) {
	n := len(answers)
	if uint64(n) > math.MaxUint32 {
		return nil, fmt.Errorf("store: %d items exceed the u32 item-count field", n)
	}
	sort.Slice(rule.Large, func(i, j int) bool { return rule.Large[i] < rule.Large[j] })

	version, header := uint16(FormatVersion), headerSizeV1
	if epoch != 0 {
		version, header = FormatVersionEpoch, headerSizeV2
	}
	answerLen := (n + 7) / 8
	ruleBytes := appendRuleSection(nil, rule)
	total := header + answerLen + len(ruleBytes) + trailerSize
	if total > MaxArtifactSize {
		return nil, fmt.Errorf("store: artifact of %d bytes exceeds MaxArtifactSize", total)
	}

	data := make([]byte, 0, total)
	data = append(data, magic...)
	data = binary.LittleEndian.AppendUint16(data, version)
	data = binary.LittleEndian.AppendUint16(data, 0) // reserved
	data = binary.LittleEndian.AppendUint64(data, instance)
	data = binary.LittleEndian.AppendUint64(data, seed)
	data = binary.LittleEndian.AppendUint64(data, math.Float64bits(epsilon))
	data = binary.LittleEndian.AppendUint32(data, uint32(n))
	data = binary.LittleEndian.AppendUint32(data, uint32(header))
	data = binary.LittleEndian.AppendUint32(data, uint32(answerLen))
	data = binary.LittleEndian.AppendUint32(data, uint32(header+answerLen))
	data = binary.LittleEndian.AppendUint32(data, uint32(len(ruleBytes)))
	if epoch != 0 {
		data = binary.LittleEndian.AppendUint64(data, epoch)
	}

	data = data[:header+answerLen]
	for i, in := range answers {
		if in {
			data[header+i>>3] |= 1 << (i & 7)
		}
	}
	data = append(data, ruleBytes...)
	data = binary.LittleEndian.AppendUint64(data, crc64.Checksum(data, crcTable))
	return decodeArtifact(data)
}

// appendRuleSection encodes the rule section:
//
//	[0:8)  e_small (f64 bits)
//	[8:9)  flags (bit 0: singleton)
//	[9:13) large-index count (u32), then that many u32 indices (sorted)
//	then   threshold count (u32), then that many f64s
func appendRuleSection(dst []byte, r RuleSection) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.ESmall))
	var flags byte
	if r.Singleton {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Large)))
	for _, idx := range r.Large {
		dst = binary.LittleEndian.AppendUint32(dst, idx)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Thresholds)))
	for _, th := range r.Thresholds {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(th))
	}
	return dst
}

// decodeRuleSection decodes appendRuleSection's output.
func decodeRuleSection(b []byte) (RuleSection, error) {
	if len(b) < 13 {
		return RuleSection{}, fmt.Errorf("%w: rule section of %d bytes", ErrCorrupt, len(b))
	}
	r := RuleSection{ESmall: math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))}
	r.Singleton = b[8]&1 != 0
	largeN := int(binary.LittleEndian.Uint32(b[9:13]))
	off := 13
	if len(b) < off+4*largeN+4 {
		return RuleSection{}, fmt.Errorf("%w: rule section truncated (%d large indices)", ErrCorrupt, largeN)
	}
	if largeN > 0 {
		r.Large = make([]uint32, largeN)
		for k := range r.Large {
			r.Large[k] = binary.LittleEndian.Uint32(b[off : off+4])
			off += 4
		}
	}
	thN := int(binary.LittleEndian.Uint32(b[off : off+4]))
	off += 4
	if len(b) != off+8*thN {
		return RuleSection{}, fmt.Errorf("%w: rule section truncated (%d thresholds)", ErrCorrupt, thN)
	}
	if thN > 0 {
		r.Thresholds = make([]float64, thN)
		for k := range r.Thresholds {
			r.Thresholds[k] = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
			off += 8
		}
	}
	return r, nil
}

// Decode validates data as a complete artifact (structure and
// checksum) and returns a reader over it. The artifact aliases data;
// callers hand over ownership.
func Decode(data []byte) (*Artifact, error) {
	return decodeArtifact(data)
}

// decodeArtifact is Decode's implementation.
func decodeArtifact(data []byte) (*Artifact, error) {
	if len(data) < headerSizeV1+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than any artifact", ErrCorrupt, len(data))
	}
	if len(data) > MaxArtifactSize {
		return nil, fmt.Errorf("%w: %d bytes exceeds MaxArtifactSize", ErrCorrupt, len(data))
	}
	if string(data[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	var header int
	switch v := binary.LittleEndian.Uint16(data[4:6]); v {
	case FormatVersion:
		header = headerSizeV1
	case FormatVersionEpoch:
		header = headerSizeV2
	default:
		return nil, fmt.Errorf("%w: version %d (this build reads %d and %d)",
			ErrBadVersion, v, FormatVersion, FormatVersionEpoch)
	}
	if len(data) < header+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than the header", ErrCorrupt, len(data))
	}
	body := data[:len(data)-trailerSize]
	want := binary.LittleEndian.Uint64(data[len(data)-trailerSize:])
	if got := crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %016x, want %016x)", ErrCorrupt, got, want)
	}
	n := int(binary.LittleEndian.Uint32(data[32:36]))
	ansOff := int(binary.LittleEndian.Uint32(data[36:40]))
	ansLen := int(binary.LittleEndian.Uint32(data[40:44]))
	ruleOff := int(binary.LittleEndian.Uint32(data[44:48]))
	ruleLen := int(binary.LittleEndian.Uint32(data[48:52]))
	if ansOff != header || ansLen != (n+7)/8 ||
		ruleOff != ansOff+ansLen || ruleOff+ruleLen != len(body) {
		return nil, fmt.Errorf("%w: inconsistent section offsets", ErrCorrupt)
	}
	var epoch uint64
	if header == headerSizeV2 {
		if epoch = binary.LittleEndian.Uint64(data[52:60]); epoch == 0 {
			// Epoch 0 must be version 1, or the same solution would have
			// two valid byte images and content addressing breaks.
			return nil, fmt.Errorf("%w: version-2 artifact addressing epoch 0", ErrCorrupt)
		}
	}
	a := &Artifact{
		Instance: binary.LittleEndian.Uint64(data[8:16]),
		Seed:     binary.LittleEndian.Uint64(data[16:24]),
		Epoch:    epoch,
		Epsilon:  math.Float64frombits(binary.LittleEndian.Uint64(data[24:32])),
		N:        n,
		data:     data,
		answers:  data[ansOff : ansOff+ansLen],
	}
	if _, err := a.Rule(); err != nil {
		return nil, err
	}
	return a, nil
}

// ReadFile loads and validates the artifact at path.
func ReadFile(path string) (*Artifact, error) {
	st, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		return nil, fmt.Errorf("store: stat artifact: %w", err)
	}
	if st.Size() > MaxArtifactSize {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrCorrupt, path, st.Size())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read artifact: %w", err)
	}
	a, err := decodeArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// WriteFile persists the artifact atomically: the bytes land in a
// temp file in the destination directory, are fsynced, and replace
// path via rename — a reader never observes a torn artifact, and a
// crash mid-write leaves the previous version (or nothing) in place.
func (a *Artifact) WriteFile(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create artifact directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".lcas-tmp-*")
	if err != nil {
		return fmt.Errorf("store: create temp artifact: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
	}
	if _, err := tmp.Write(a.data); err != nil {
		cleanup()
		return fmt.Errorf("store: write artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: sync artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: close artifact: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: install artifact: %w", err)
	}
	return nil
}
