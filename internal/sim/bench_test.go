package sim

import (
	"context"
	"testing"
	"time"

	"lcakp/internal/core"
	"lcakp/internal/oracle"
	"lcakp/internal/workload"
)

// benchAccess builds oracle access for benchmarks.
func benchAccess(b *testing.B) oracle.Access {
	b.Helper()
	gen, err := workload.Generate(workload.Spec{Name: "zipf", N: 500, Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	acc, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		b.Fatal(err)
	}
	return acc
}

func BenchmarkSimulationSteadyState(b *testing.B) {
	acc := benchAccess(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(acc, Config{
			Replicas: 3,
			Queries:  100,
			Params:   core.Params{Epsilon: 0.25, Seed: 5},
			Seed:     uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulationWithChurn(b *testing.B) {
	acc := benchAccess(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(acc, Config{
			Replicas:        3,
			Queries:         100,
			Params:          core.Params{Epsilon: 0.25, Seed: 5},
			ArrivalInterval: 15 * time.Millisecond,
			MTBF:            50 * time.Millisecond,
			Seed:            uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
