package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"lcakp/internal/core"
	"lcakp/internal/knapsack"
	"lcakp/internal/workload"
)

// churnBase generates the mutable base instance of the churn tests:
// planted-large, whose planted items carry ~8% of total profit each —
// above ε² at ε = 0.25 — so solutions are non-empty and epoch seals
// visibly move answers.
func churnBase(t *testing.T, n int) *knapsack.Instance {
	t.Helper()
	gen, err := workload.Generate(workload.Spec{Name: "planted-large", N: n, Seed: 12, PlantedLarge: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return gen.Float
}

// churnParams are the LCA parameters shared by every replica.
var churnParams = core.Params{Epsilon: 0.25, Seed: 7}

// runDynamic builds and runs a dynamic simulation.
func runDynamic(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := NewDynamic(churnBase(t, 200), cfg)
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestChurnConfigValidation(t *testing.T) {
	acc := testAccess(t, 50)
	if _, err := New(acc, Config{
		Replicas: 1, Queries: 1, Params: churnParams,
		Churn: ChurnConfig{Interval: time.Millisecond},
	}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("static New accepted churn: %v", err)
	}
	if _, err := NewDynamic(churnBase(t, 50), Config{
		Replicas: 1, Queries: 1, Params: churnParams,
		FlashCrowd: FlashCrowdConfig{Queries: 10},
	}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("flash crowd without churn accepted: %v", err)
	}
}

// TestChurnPerEpochConsistency is the schedule's core claim: with
// seals landing mid-stream and crash/restart churn on top, every
// (item, epoch) pair is answered unanimously — rules are bit-exact per
// epoch across replicas, failovers, and restarts — while answers DO
// change across epochs (the churn is real, not a no-op).
func TestChurnPerEpochConsistency(t *testing.T) {
	res := runDynamic(t, Config{
		Replicas: 3,
		Queries:  600,
		Params:   churnParams,
		Seed:     3,
		MTBF:     60 * time.Millisecond,
		Churn:    ChurnConfig{Interval: 80 * time.Millisecond, Ops: 8},
	})
	if res.Seals == 0 {
		t.Fatal("no seals landed; raise the query count or shrink the churn interval")
	}
	if res.Consistency != 1.0 {
		t.Errorf("per-epoch consistency = %v, want 1.0 (sealed rules must be bit-exact)", res.Consistency)
	}

	// The churn must be visible: some item must answer differently in
	// two different epochs.
	byItemEpoch := make(map[int]map[bool]bool)
	moved := false
	for _, rec := range res.Records {
		if !rec.OK {
			continue
		}
		if byItemEpoch[rec.Item] == nil {
			byItemEpoch[rec.Item] = make(map[bool]bool)
		}
		byItemEpoch[rec.Item][rec.Answer] = true
		if len(byItemEpoch[rec.Item]) == 2 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("no item's answer moved across epochs; churn schedule is a no-op")
	}
}

// TestChurnDeterministic pins reproducibility: two runs from the same
// seed produce identical records, epochs included.
func TestChurnDeterministic(t *testing.T) {
	cfg := Config{
		Replicas: 2,
		Queries:  200,
		Params:   churnParams,
		Seed:     9,
		Churn:    ChurnConfig{Interval: 50 * time.Millisecond, Ops: 4},
	}
	a := runDynamic(t, cfg)
	b := runDynamic(t, cfg)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for k := range a.Records {
		if a.Records[k] != b.Records[k] {
			t.Fatalf("record %d differs: %+v vs %+v", k, a.Records[k], b.Records[k])
		}
	}
	if a.Seals != b.Seals {
		t.Errorf("seal counts differ: %d vs %d", a.Seals, b.Seals)
	}
}

// TestChurnDuringPartition cuts half the fleet off while seals land,
// then heals it: the partitioned replicas replay the missed batches
// (CatchUpSeals > 0) and the whole run still answers every
// (item, epoch) unanimously — a replica that slept through a rollover
// serves the same sealed bits as one that lived it.
func TestChurnDuringPartition(t *testing.T) {
	res := runDynamic(t, Config{
		Replicas:        4,
		Queries:         800,
		ArrivalInterval: time.Millisecond,
		Params:          churnParams,
		Seed:            5,
		Churn:           ChurnConfig{Interval: 60 * time.Millisecond, Ops: 6},
		Partition: PartitionConfig{
			At:       100 * time.Millisecond,
			Duration: 250 * time.Millisecond,
			Replicas: 2,
		},
	})
	if res.Partitions != 1 {
		t.Fatalf("Partitions = %d, want 1", res.Partitions)
	}
	if res.Seals == 0 {
		t.Fatal("no seals landed during the run")
	}
	if res.CatchUpSeals == 0 {
		t.Error("CatchUpSeals = 0: the partition window overlapped no seal, schedule proves nothing")
	}
	if res.Consistency != 1.0 {
		t.Errorf("per-epoch consistency = %v, want 1.0 across the partition heal", res.Consistency)
	}
	if res.Availability < 0.99 {
		t.Errorf("availability = %v; the majority side should have absorbed the partition", res.Availability)
	}
}

// TestFlashCrowd pins the post-seal burst: every seal injects its
// burst, the extra records land, and the burst answers are consistent
// with the steady stream's answers at the same epoch.
func TestFlashCrowd(t *testing.T) {
	const base = 300
	res := runDynamic(t, Config{
		Replicas:   3,
		Queries:    base,
		Params:     churnParams,
		Seed:       11,
		Churn:      ChurnConfig{Interval: 70 * time.Millisecond, Ops: 4, MaxSeals: 2},
		FlashCrowd: FlashCrowdConfig{Queries: 50},
	})
	if res.Seals == 0 {
		t.Fatal("no seals, no bursts")
	}
	wantFlash := res.Seals * 50
	if res.FlashQueries != wantFlash {
		t.Errorf("FlashQueries = %d, want %d (%d seals x 50)", res.FlashQueries, wantFlash, res.Seals)
	}
	if got := len(res.Records); got != base+wantFlash {
		t.Errorf("records = %d, want %d steady + %d burst", got, base, wantFlash)
	}
	if res.Consistency != 1.0 {
		t.Errorf("per-epoch consistency = %v, want 1.0 under the thundering herd", res.Consistency)
	}
}
