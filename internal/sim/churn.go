package sim

import (
	"context"
	"fmt"
	"time"

	"lcakp/internal/engine"
	"lcakp/internal/epoch"
	"lcakp/internal/knapsack"
	"lcakp/internal/rng"
)

// ChurnConfig schedules item churn: the catalog mutates while queries
// are in flight, and each batch of mutations is sealed into a new
// epoch whose rule re-derives through the canonical materialization
// path (internal/epoch). Every replica runs its OWN epoch.Manager over
// the same base instance and replays the same mutation stream — the
// cross-replica bit-exactness of sealed epochs is the property under
// test, not an artifact of shared state.
type ChurnConfig struct {
	// Interval is the mean time between epoch seals (exponential);
	// 0 disables churn and the simulation is the static fixed-instance
	// model.
	Interval time.Duration
	// Ops is the number of mutations staged per seal; 0 selects 4. The
	// mix is ~60% reprice, ~20% add, ~20% remove, drawn from the
	// simulation seed.
	Ops int
	// MaxSeals bounds the number of seals; 0 leaves churn running until
	// the query stream drains.
	MaxSeals int
	// Retain is each replica's sealed-epoch residency budget (how far
	// back a pinned query may reach); 0 selects 16.
	Retain int
}

// FlashCrowdConfig schedules a post-seal query burst: every seal is
// followed by a rush of clients querying the fresh catalog — the
// thundering-herd moment where cross-epoch cache mixing would surface.
// Requires churn.
type FlashCrowdConfig struct {
	// Queries is the burst size per seal; 0 disables.
	Queries int
	// ArrivalInterval is the burst's mean inter-arrival time; 0 selects
	// one tenth of the base ArrivalInterval.
	ArrivalInterval time.Duration
}

// PartitionConfig schedules one network partition: a deterministic
// window during which some replicas are unreachable (state intact —
// unlike a crash, nothing restarts). Combined with churn this is the
// churn-during-partition schedule: the cut-off replicas miss seal
// events and must catch up by replaying the missed mutation batches
// when the partition heals, after which pinned queries to every epoch
// — sealed before, during, or after the window — must answer
// identically on both sides of the partition.
type PartitionConfig struct {
	// At is the virtual time the partition opens; 0 disables.
	At time.Duration
	// Duration is the window length; 0 selects 100ms.
	Duration time.Duration
	// Replicas is how many replicas are cut off (the lowest ids);
	// 0 selects half the fleet (at least one, never all).
	Replicas int
}

// NewDynamic builds a churn-capable simulation over a mutable base
// instance. With Churn.Interval == 0 it behaves exactly like New over
// a slice oracle of base; with churn enabled, each replica versions
// the instance through its own epoch.Manager and every query is
// pinned to the epoch that was current when it was issued.
func NewDynamic(base *knapsack.Instance, cfg Config) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("%w: base instance: %v", ErrBadConfig, err)
	}
	s := &Simulation{
		cfg:     cfg,
		base:    base,
		dynamic: true,
		src:     rng.New(cfg.Seed).Derive("sim"),
	}
	tenant := engine.TenantID{Instance: 0, Seed: cfg.Params.Seed}
	for r := 0; r < cfg.Replicas; r++ {
		mgr, err := epoch.NewManager(context.Background(), tenant, base, cfg.Params, cfg.Churn.Retain)
		if err != nil {
			return nil, fmt.Errorf("sim: replica %d manager: %w", r, err)
		}
		s.replicas = append(s.replicas, &replica{id: r, mgr: mgr, up: true})
	}
	s.initChurnScales()
	return s, nil
}

// initChurnScales derives the mutation value scales from the base
// instance so generated reprices and adds stay in the catalog's own
// profit/weight regime instead of distorting it.
func (s *Simulation) initChurnScales() {
	var maxP, sumW float64
	for _, it := range s.base.Items {
		if it.Profit > maxP {
			maxP = it.Profit
		}
		sumW += it.Weight
	}
	s.churnMaxProfit = maxP
	s.churnMeanWeight = sumW / float64(len(s.base.Items))
	s.shadowN = s.base.N()
}

// nextBatch draws one deterministic mutation batch from the churn
// stream. Adds land at the shadow length so the same batch stages
// cleanly on every replica regardless of when it catches up.
func (s *Simulation) nextBatch() []epoch.Mutation {
	if s.churnSrc == nil {
		s.churnSrc = s.src.Derive("churn")
	}
	ops := s.cfg.Churn.Ops
	batch := make([]epoch.Mutation, 0, ops)
	for k := 0; k < ops; k++ {
		roll := s.churnSrc.Float64()
		switch {
		case roll < 0.2:
			batch = append(batch, epoch.Mutation{
				Op:     epoch.OpAdd,
				Index:  uint32(s.shadowN),
				Profit: s.churnSrc.Float64() * s.churnMaxProfit * 1.5,
				Weight: s.churnMeanWeight * (0.5 + s.churnSrc.Float64()),
			})
			s.shadowN++
		case roll < 0.4:
			batch = append(batch, epoch.Mutation{
				Op:    epoch.OpRemove,
				Index: uint32(s.churnSrc.Intn(s.shadowN)),
			})
		default:
			batch = append(batch, epoch.Mutation{
				Op:     epoch.OpReprice,
				Index:  uint32(s.churnSrc.Intn(s.shadowN)),
				Profit: s.churnSrc.Float64() * s.churnMaxProfit * 1.5,
				Weight: s.churnMeanWeight * (0.5 + s.churnSrc.Float64()),
			})
		}
	}
	return batch
}

// scheduleSeal arms the next epoch seal.
func (s *Simulation) scheduleSeal() {
	at := s.now + s.expDuration(s.cfg.Churn.Interval)
	s.schedule(at, func() {
		if s.done() {
			return
		}
		if s.cfg.Churn.MaxSeals > 0 && s.seals >= s.cfg.Churn.MaxSeals {
			return
		}
		s.batches = append(s.batches, s.nextBatch())
		s.controlEpoch++
		s.seals++
		for _, r := range s.replicas {
			if r.up && !r.partitioned {
				s.catchUp(r, false)
			}
		}
		if s.cfg.FlashCrowd.Queries > 0 {
			s.scheduleFlashCrowd()
		}
		s.scheduleSeal()
	})
}

// catchUp replays every mutation batch the replica has not sealed yet,
// in order. At a seal event this is the single new batch; at a
// partition heal or a restart it is the backlog the replica missed
// while unreachable — the churn-during-partition recovery path.
func (s *Simulation) catchUp(r *replica, healing bool) {
	for r.sealedThrough < len(s.batches) {
		batch := s.batches[r.sealedThrough]
		if err := r.mgr.StageAll(batch); err != nil {
			panic(fmt.Sprintf("sim: replica %d stage batch %d: %v", r.id, r.sealedThrough, err))
		}
		if _, err := r.mgr.Seal(s.sealCtx()); err != nil {
			panic(fmt.Sprintf("sim: replica %d seal %d: %v", r.id, r.sealedThrough+1, err))
		}
		r.sealedThrough++
		if healing {
			s.catchUpSeals++
		}
	}
}

// sealCtx returns the context replica seals derive under: the
// Run-scoped context while the event loop is live, Background during
// construction.
func (s *Simulation) sealCtx() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// scheduleFlashCrowd injects the post-seal burst. Burst arrivals read
// the control epoch at execution time like every other arrival, so
// they pin the epoch that was just sealed.
func (s *Simulation) scheduleFlashCrowd() {
	interval := s.cfg.FlashCrowd.ArrivalInterval
	if interval <= 0 {
		interval = s.cfg.ArrivalInterval / 10
		if interval <= 0 {
			interval = 100 * time.Microsecond
		}
	}
	burst := s.src.Derive("flash")
	at := s.now
	n := s.base.N()
	for q := 0; q < s.cfg.FlashCrowd.Queries; q++ {
		at += time.Duration(float64(interval) * burst.ExpFloat64())
		item := burst.Intn(n)
		issuedAt := at
		s.schedule(at, func() { s.dispatch(item, s.controlEpoch, issuedAt, 0, nil) })
	}
	s.flashQueries += s.cfg.FlashCrowd.Queries
}

// schedulePartition arms the partition window: the lowest-id replicas
// become unreachable at At and heal (with seal catch-up) at
// At+Duration.
func (s *Simulation) schedulePartition() {
	cut := s.cfg.Partition.Replicas
	if cut <= 0 {
		cut = len(s.replicas) / 2
	}
	if cut < 1 {
		cut = 1
	}
	if cut >= len(s.replicas) {
		cut = len(s.replicas) - 1
	}
	s.schedule(s.cfg.Partition.At, func() {
		for _, r := range s.replicas[:cut] {
			r.partitioned = true
		}
		s.partitions++
	})
	s.schedule(s.cfg.Partition.At+s.cfg.Partition.Duration, func() {
		for _, r := range s.replicas[:cut] {
			r.partitioned = false
			if r.up && s.dynamic {
				s.catchUp(r, true)
			}
		}
	})
}

// answer serves one query at the pinned epoch. Static simulations
// query the live LCA (the paper's w.h.p. consistency mechanism);
// dynamic ones serve from the sealed epoch's materialized rule — the
// artifact-store semantics — and fail loudly when the replica has not
// sealed (or no longer retains) the pinned epoch, which surfaces as a
// failover to a replica that has it.
func (s *Simulation) answer(r *replica, item int, ep engine.EpochID) (bool, error) {
	if !s.dynamic {
		return r.lca.Query(s.ctx, item)
	}
	snap, ok := r.mgr.Snapshot(ep)
	if !ok {
		return false, fmt.Errorf("sim: replica %d does not hold epoch %d (sealed through %d)",
			r.id, uint64(ep), r.sealedThrough)
	}
	if item >= snap.Instance.N() {
		return false, nil
	}
	return snap.Rule.Decide(item, snap.Instance.Items[item]), nil
}

// itemSpace is the index range client arrivals draw from: the base
// instance's N. Items added by churn extend the index space of later
// epochs, but clients of this simulation query the original catalog.
func (s *Simulation) itemSpace() int {
	if s.dynamic {
		return s.base.N()
	}
	return s.access.N()
}
