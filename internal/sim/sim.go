// Package sim is a deterministic discrete-event simulator for LCA
// replica fleets under failure injection.
//
// The LCA model's killer operational property is statelessness: a
// replica that crashes loses nothing, because there is nothing to
// lose — every query recomputes its answer from the shared seed and
// fresh samples. This package makes that claim measurable. It
// simulates a fleet of replicas (each wrapping a REAL core.LCAKP, not
// a mock), a load balancer that retries failed queries on other
// replicas, clients issuing query streams, and a failure injector that
// crashes and restarts replicas on schedule. The collector then
// answers the questions an operator would ask: what availability did
// clients see, were answers consistent across replicas and across
// failovers, and what did retries cost?
//
// The simulation is deterministic given its seed: the event queue is
// ordered by (time, sequence), and all randomness flows from
// rng.Source streams.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"lcakp/internal/core"
	"lcakp/internal/engine"
	"lcakp/internal/epoch"
	"lcakp/internal/knapsack"
	"lcakp/internal/oracle"
	"lcakp/internal/rng"
	"lcakp/internal/stats"
)

// Sentinel errors.
var (
	// ErrBadConfig indicates invalid simulation parameters.
	ErrBadConfig = errors.New("sim: invalid configuration")
	// errAllReplicasDown marks a query that exhausted its retries.
	errAllReplicasDown = errors.New("sim: all replicas down")
)

// event is one scheduled action.
type event struct {
	at  time.Duration
	seq uint64 // tie-break for determinism
	fn  func()
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push appends an event (heap.Interface).
func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

// Pop removes the last event (heap.Interface).
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Config parameterizes a simulation run.
type Config struct {
	// Replicas is the fleet size (>= 1).
	Replicas int
	// Params configures every replica's LCA (shared seed!).
	Params core.Params
	// Queries is the number of client queries to issue.
	Queries int
	// ArrivalInterval is the mean inter-arrival time of queries
	// (exponential); 0 selects 1ms.
	ArrivalInterval time.Duration
	// ServiceTime is the mean per-query service time at a replica
	// (exponential); 0 selects 5ms.
	ServiceTime time.Duration
	// MTBF is each replica's mean time between failures (exponential);
	// 0 disables failure injection.
	MTBF time.Duration
	// RepairTime is the mean crash-to-restart time (exponential);
	// 0 selects 50ms (only used when MTBF > 0).
	RepairTime time.Duration
	// MaxRetries bounds per-query failover attempts; 0 selects
	// Replicas (try everyone once).
	MaxRetries int
	// Policy selects the load-balancing policy: PolicyRandom (default)
	// picks a uniform healthy replica, PolicyLeastBusy the one whose
	// queue drains soonest, PolicyPowerOfTwo samples two distinct
	// healthy replicas and keeps the less busy one.
	Policy Policy
	// Seed drives all simulation randomness.
	Seed uint64

	// Churn schedules epoch seals over a mutating instance; requires
	// NewDynamic (see churn.go).
	Churn ChurnConfig
	// FlashCrowd schedules a post-seal query burst; requires Churn.
	FlashCrowd FlashCrowdConfig
	// Partition schedules one deterministic unreachability window.
	Partition PartitionConfig
}

// Policy is a load-balancing policy.
type Policy uint8

// Load-balancing policies.
const (
	// PolicyRandom routes to a uniformly random healthy replica.
	PolicyRandom Policy = iota
	// PolicyLeastBusy routes to the healthy replica whose FIFO queue
	// drains soonest.
	PolicyLeastBusy
	// PolicyPowerOfTwo draws two distinct healthy replicas uniformly and
	// routes to the one whose queue drains sooner — the power-of-two-
	// choices rule the serving gateway's router uses (internal/gateway),
	// simulated here so its balance/availability trade-off is measurable
	// against the other policies.
	PolicyPowerOfTwo
)

// validate applies defaults and checks bounds.
func (c *Config) validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("%w: replicas=%d", ErrBadConfig, c.Replicas)
	}
	if c.Queries < 1 {
		return fmt.Errorf("%w: queries=%d", ErrBadConfig, c.Queries)
	}
	if c.ArrivalInterval <= 0 {
		c.ArrivalInterval = time.Millisecond
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = 5 * time.Millisecond
	}
	if c.RepairTime <= 0 {
		c.RepairTime = 50 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = c.Replicas
	}
	if c.Churn.Interval < 0 {
		return fmt.Errorf("%w: churn interval %v", ErrBadConfig, c.Churn.Interval)
	}
	if c.Churn.Interval > 0 {
		if c.Churn.Ops <= 0 {
			c.Churn.Ops = 4
		}
		if c.Churn.Retain <= 0 {
			c.Churn.Retain = 16
		}
	}
	if c.FlashCrowd.Queries > 0 && c.Churn.Interval == 0 {
		return fmt.Errorf("%w: flash crowd requires churn (bursts ride epoch seals)", ErrBadConfig)
	}
	if c.Partition.At > 0 && c.Partition.Duration <= 0 {
		c.Partition.Duration = 100 * time.Millisecond
	}
	return nil
}

// replica is one simulated LCA server.
type replica struct {
	id  int
	lca *core.LCAKP
	// mgr versions the replica's instance in dynamic simulations (nil
	// in static ones): each replica seals the shared mutation stream
	// independently, so cross-replica agreement is earned by the pure
	// derivation path, not by shared memory.
	mgr *epoch.Manager
	up  bool
	// partitioned marks the replica unreachable without state loss:
	// it is skipped by routing, fails queries in flight, and misses
	// seal events until the partition heals.
	partitioned bool
	// sealedThrough counts the mutation batches this replica has sealed
	// (its current epoch in dynamic mode).
	sealedThrough int
	// busyUntil models a single-server FIFO queue: new work starts no
	// earlier than the previous job finishes.
	busyUntil time.Duration

	crashes  int
	restarts int
	served   int
}

// QueryRecord is the collector's per-query outcome.
type QueryRecord struct {
	// Item is the queried index.
	Item int
	// Epoch is the instance version the query was pinned to: the
	// control-plane epoch current at issue time (always 0 in static
	// simulations). Consistency is judged per (item, epoch) — answers
	// legitimately change across seals, never within one.
	Epoch engine.EpochID
	// Answer is the membership answer (valid only when OK).
	Answer bool
	// OK reports whether any replica answered before retries ran out.
	OK bool
	// Replica is the id of the replica that answered (-1 if none).
	Replica int
	// Retries is the number of failovers before success or give-up.
	Retries int
	// IssuedAt and DoneAt are virtual timestamps.
	IssuedAt, DoneAt time.Duration
}

// Latency returns the query's virtual latency.
func (r QueryRecord) Latency() time.Duration { return r.DoneAt - r.IssuedAt }

// Result summarizes a simulation run.
type Result struct {
	Records []QueryRecord
	// Availability is the fraction of queries answered.
	Availability float64
	// Consistency is the fraction of answered items whose answers were
	// unanimous across ALL replicas and times that served them (items
	// answered once count as consistent).
	Consistency float64
	// MeanRetries is the average failover count per query.
	MeanRetries float64
	// P50 and P99 are virtual latency percentiles of answered queries.
	P50, P99 time.Duration
	// Crashes and Restarts are fleet-wide failure-injection totals.
	Crashes, Restarts int
	// Seals is the number of epoch seals the control plane issued
	// (0 in static simulations); the final epoch id equals Seals.
	Seals int
	// CatchUpSeals counts replica seals replayed while healing — at a
	// partition heal or a post-crash restart — rather than live at the
	// seal event.
	CatchUpSeals int
	// Partitions is the number of partition windows that opened.
	Partitions int
	// FlashQueries is how many burst queries the flash-crowd schedule
	// injected on top of Config.Queries.
	FlashQueries int
	// PerReplicaServed[i] is how many queries replica i answered.
	PerReplicaServed []int
	// VirtualDuration is the virtual time at which the last event ran.
	VirtualDuration time.Duration
}

// Simulation is one configured run.
type Simulation struct {
	cfg      Config
	access   oracle.Access
	replicas []*replica

	// Dynamic (churn) state: the base instance, the control plane's
	// sealed-batch history, and the epoch current at each instant.
	// See churn.go.
	base                            *knapsack.Instance
	dynamic                         bool
	controlEpoch                    engine.EpochID
	batches                         [][]epoch.Mutation
	seals                           int
	catchUpSeals                    int
	partitions                      int
	flashQueries                    int
	shadowN                         int
	churnSrc                        *rng.Source
	churnMaxProfit, churnMeanWeight float64

	queue eventQueue
	seq   uint64
	now   time.Duration

	// ctx is the Run-scoped context threaded into every replica query;
	// it is set at the top of Run and cleared on return.
	ctx context.Context

	src     *rng.Source
	records []QueryRecord
}

// New builds a simulation over the given oracle access. Every replica
// gets its own core.LCAKP configured with cfg.Params (same seed — the
// consistency mechanism under test).
func New(access oracle.Access, cfg Config) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Churn.Interval > 0 {
		return nil, fmt.Errorf("%w: churn requires NewDynamic (a mutable base instance)", ErrBadConfig)
	}
	s := &Simulation{
		cfg:    cfg,
		access: access,
		src:    rng.New(cfg.Seed).Derive("sim"),
	}
	for r := 0; r < cfg.Replicas; r++ {
		lca, err := core.NewLCAKP(access, cfg.Params)
		if err != nil {
			return nil, fmt.Errorf("sim: replica %d: %w", r, err)
		}
		s.replicas = append(s.replicas, &replica{id: r, lca: lca, up: true})
	}
	return s, nil
}

// schedule enqueues fn to run at absolute virtual time at.
func (s *Simulation) schedule(at time.Duration, fn func()) {
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// expDuration draws an exponential duration with the given mean.
func (s *Simulation) expDuration(mean time.Duration) time.Duration {
	return time.Duration(float64(mean) * s.src.ExpFloat64())
}

// Run executes the simulation to completion and returns the summary.
// ctx cancels the run: the event loop stops at the next event boundary
// and Run returns the context's error (virtual time is unrelated to
// wall time, so cancellation is the only way to bound a runaway run).
func (s *Simulation) Run(ctx context.Context) (Result, error) {
	s.ctx = ctx
	defer func() { s.ctx = nil }()

	// Schedule query arrivals.
	arrivals := s.src.Derive("arrivals")
	queryItems := s.src.Derive("items")
	at := time.Duration(0)
	n := s.itemSpace()
	for q := 0; q < s.cfg.Queries; q++ {
		at += time.Duration(float64(s.cfg.ArrivalInterval) * arrivals.ExpFloat64())
		item := queryItems.Intn(n)
		issuedAt := at
		// The pinned epoch is read when the arrival fires, not here:
		// the client pins whatever the control plane has sealed by then.
		s.schedule(at, func() { s.dispatch(item, s.controlEpoch, issuedAt, 0, nil) })
	}

	// Schedule failure injection per replica.
	if s.cfg.MTBF > 0 {
		for _, r := range s.replicas {
			s.scheduleCrash(r)
		}
	}

	// Schedule churn and the partition window.
	if s.dynamic && s.cfg.Churn.Interval > 0 {
		s.scheduleSeal()
	}
	if s.cfg.Partition.At > 0 {
		s.schedulePartition()
	}

	// Drain the event queue, checking for cancellation at each event
	// boundary.
	for s.queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("sim: run aborted after %d records: %w", len(s.records), err)
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		e.fn()
	}
	return s.summarize(), nil
}

// done reports whether every query has produced a record; once true,
// failure injection stops re-arming so the event queue can drain (the
// crash/restart cycle would otherwise self-perpetuate forever).
func (s *Simulation) done() bool {
	return len(s.records) >= s.cfg.Queries
}

// scheduleCrash arms the next crash for replica r.
func (s *Simulation) scheduleCrash(r *replica) {
	crashAt := s.now + s.expDuration(s.cfg.MTBF)
	s.schedule(crashAt, func() {
		if !r.up || s.done() {
			return
		}
		r.up = false
		r.crashes++
		repairAt := s.now + s.expDuration(s.cfg.RepairTime)
		s.schedule(repairAt, func() {
			// Restart is trivial: a stateless replica has no recovery
			// protocol — it is simply up again. In dynamic mode it
			// additionally replays the seals it slept through, which is
			// pure re-derivation, not state recovery.
			r.up = true
			r.restarts++
			if s.dynamic && !r.partitioned {
				s.catchUp(r, true)
			}
			if !s.done() {
				s.scheduleCrash(r)
			}
		})
	})
}

// dispatch routes a query (pinned to epoch ep) to a healthy replica,
// with failover. tried tracks replica ids already attempted.
func (s *Simulation) dispatch(item int, ep engine.EpochID, issuedAt time.Duration, retries int, tried map[int]bool) {
	if tried == nil {
		tried = make(map[int]bool, s.cfg.Replicas)
	}
	target := s.pickReplica(tried)
	if target == nil || retries >= s.cfg.MaxRetries {
		s.records = append(s.records, QueryRecord{
			Item:     item,
			Epoch:    ep,
			OK:       false,
			Replica:  -1,
			Retries:  retries,
			IssuedAt: issuedAt,
			DoneAt:   s.now,
		})
		return
	}
	tried[target.id] = true

	// Single-server FIFO queue: service starts when the replica frees
	// up, and occupies it until done.
	start := s.now
	if target.busyUntil > start {
		start = target.busyUntil
	}
	serviceDone := start + s.expDuration(s.cfg.ServiceTime)
	target.busyUntil = serviceDone
	s.schedule(serviceDone, func() {
		if !target.up || target.partitioned {
			// Crashed or cut off mid-service: fail over.
			s.dispatch(item, ep, issuedAt, retries+1, tried)
			return
		}
		answer, err := s.answer(target, item, ep)
		if err != nil {
			s.dispatch(item, ep, issuedAt, retries+1, tried)
			return
		}
		target.served++
		s.records = append(s.records, QueryRecord{
			Item:     item,
			Epoch:    ep,
			Answer:   answer,
			OK:       true,
			Replica:  target.id,
			Retries:  retries,
			IssuedAt: issuedAt,
			DoneAt:   s.now,
		})
	})
}

// pickReplica chooses a healthy, untried replica per the configured
// policy (nil if none remain).
func (s *Simulation) pickReplica(tried map[int]bool) *replica {
	candidates := make([]*replica, 0, len(s.replicas))
	for _, r := range s.replicas {
		if r.up && !r.partitioned && !tried[r.id] {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	switch s.cfg.Policy {
	case PolicyLeastBusy:
		best := candidates[0]
		for _, r := range candidates[1:] {
			if r.busyUntil < best.busyUntil {
				best = r
			}
		}
		return best
	case PolicyPowerOfTwo:
		if len(candidates) == 1 {
			return candidates[0]
		}
		// Two distinct draws: i uniform over n, j uniform over the rest.
		i := s.src.Intn(len(candidates))
		j := s.src.Intn(len(candidates) - 1)
		if j >= i {
			j++
		}
		if candidates[j].busyUntil < candidates[i].busyUntil {
			return candidates[j]
		}
		return candidates[i]
	default:
		return candidates[s.src.Intn(len(candidates))]
	}
}

// summarize folds the records into a Result.
func (s *Simulation) summarize() Result {
	res := Result{
		Records:          s.records,
		PerReplicaServed: make([]int, len(s.replicas)),
		VirtualDuration:  s.now,
	}
	answered := 0
	retrySum := 0
	latencies := make([]float64, 0, len(s.records))
	// Unanimity is judged per (item, epoch): a seal may legitimately
	// change an item's answer, so only same-epoch disagreement counts
	// against consistency.
	type itemEpoch struct {
		item int
		ep   engine.EpochID
	}
	answersByItem := make(map[itemEpoch][]bool)
	for _, rec := range s.records {
		retrySum += rec.Retries
		if !rec.OK {
			continue
		}
		answered++
		latencies = append(latencies, float64(rec.Latency()))
		k := itemEpoch{item: rec.Item, ep: rec.Epoch}
		answersByItem[k] = append(answersByItem[k], rec.Answer)
	}
	for _, r := range s.replicas {
		res.PerReplicaServed[r.id] = r.served
		res.Crashes += r.crashes
		res.Restarts += r.restarts
	}
	res.Seals = s.seals
	res.CatchUpSeals = s.catchUpSeals
	res.Partitions = s.partitions
	res.FlashQueries = s.flashQueries
	if len(s.records) > 0 {
		res.Availability = float64(answered) / float64(len(s.records))
		res.MeanRetries = float64(retrySum) / float64(len(s.records))
	}

	consistentItems, answeredItems := 0, 0
	for _, answers := range answersByItem {
		answeredItems++
		unanimous := true
		for _, a := range answers[1:] {
			if a != answers[0] {
				unanimous = false
				break
			}
		}
		if unanimous {
			consistentItems++
		}
	}
	if answeredItems > 0 {
		res.Consistency = float64(consistentItems) / float64(answeredItems)
	}
	if len(latencies) > 0 {
		res.P50 = time.Duration(stats.Quantile(latencies, 0.5))
		res.P99 = time.Duration(stats.Quantile(latencies, 0.99))
	}
	return res
}

// SortedRecords returns the records ordered by completion time (the
// event loop appends in completion order already; this re-sorts
// defensively for callers that mutate).
func (r Result) SortedRecords() []QueryRecord {
	out := make([]QueryRecord, len(r.Records))
	copy(out, r.Records)
	sort.Slice(out, func(i, j int) bool { return out[i].DoneAt < out[j].DoneAt })
	return out
}
