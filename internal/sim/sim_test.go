package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"lcakp/internal/core"
	"lcakp/internal/oracle"
	"lcakp/internal/workload"
)

// testAccess builds oracle access over a generated workload.
func testAccess(t *testing.T, n int) oracle.Access {
	t.Helper()
	gen, err := workload.Generate(workload.Spec{Name: "zipf", N: n, Seed: 12})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	acc, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	return acc
}

// run builds and runs a simulation, failing the test on error.
func run(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := New(testAccess(t, 500), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	acc := testAccess(t, 50)
	if _, err := New(acc, Config{Replicas: 0, Queries: 1, Params: core.Params{Epsilon: 0.2}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("replicas=0: %v", err)
	}
	if _, err := New(acc, Config{Replicas: 1, Queries: 0, Params: core.Params{Epsilon: 0.2}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("queries=0: %v", err)
	}
	if _, err := New(acc, Config{Replicas: 1, Queries: 1, Params: core.Params{}}); err == nil {
		t.Error("bad LCA params accepted")
	}
}

func TestNoFailuresFullAvailability(t *testing.T) {
	res := run(t, Config{
		Replicas: 3,
		Queries:  120,
		Params:   core.Params{Epsilon: 0.25, Seed: 5},
		Seed:     1,
	})
	if res.Availability != 1 {
		t.Errorf("availability = %v, want 1 without failures", res.Availability)
	}
	if res.Crashes != 0 || res.Restarts != 0 {
		t.Errorf("failure counters nonzero: %d/%d", res.Crashes, res.Restarts)
	}
	if len(res.Records) != 120 {
		t.Errorf("records = %d, want 120", len(res.Records))
	}
	served := 0
	for _, c := range res.PerReplicaServed {
		served += c
	}
	if served != 120 {
		t.Errorf("served sum = %d, want 120", served)
	}
}

func TestConsistencyAcrossReplicasAndTime(t *testing.T) {
	// Many queries over few items: items get answered repeatedly by
	// different replicas at different times; answers must agree.
	res := run(t, Config{
		Replicas: 4,
		Queries:  200,
		Params:   core.Params{Epsilon: 0.25, Seed: 7},
		Seed:     2,
	})
	if res.Consistency < 0.97 {
		t.Errorf("consistency = %v, want >= 0.97", res.Consistency)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := Config{
		Replicas: 3,
		Queries:  80,
		Params:   core.Params{Epsilon: 0.25, Seed: 5},
		MTBF:     200 * time.Millisecond,
		Seed:     42,
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
	if a.Crashes != b.Crashes || a.VirtualDuration != b.VirtualDuration {
		t.Errorf("summaries differ: %+v vs %+v", a, b)
	}
}

func TestFailureInjectionTriggersRetries(t *testing.T) {
	res := run(t, Config{
		Replicas:        3,
		Queries:         300,
		Params:          core.Params{Epsilon: 0.25, Seed: 5},
		ArrivalInterval: 15 * time.Millisecond, // utilization ~0.18: not overloaded
		MTBF:            40 * time.Millisecond, // aggressive churn
		RepairTime:      30 * time.Millisecond,
		ServiceTime:     8 * time.Millisecond,
		Seed:            3,
	})
	if res.Crashes == 0 {
		t.Fatal("failure injection produced no crashes")
	}
	if res.MeanRetries == 0 {
		t.Error("aggressive churn produced no retries")
	}
	// Statelessness pays: availability stays high because any healthy
	// replica can answer any query with no recovery protocol.
	if res.Availability < 0.85 {
		t.Errorf("availability = %v under churn, want >= 0.85", res.Availability)
	}
	// Consistency survives failovers.
	if res.Consistency < 0.95 {
		t.Errorf("consistency = %v under churn, want >= 0.95", res.Consistency)
	}
}

func TestSingleReplicaDowntimeLosesQueries(t *testing.T) {
	// With one replica and no failover target, crashes must surface as
	// lost queries — the harness must not silently paper over them.
	res := run(t, Config{
		Replicas:        1,
		Queries:         300,
		Params:          core.Params{Epsilon: 0.25, Seed: 5},
		ArrivalInterval: 15 * time.Millisecond,
		MTBF:            30 * time.Millisecond,
		RepairTime:      60 * time.Millisecond,
		ServiceTime:     8 * time.Millisecond,
		Seed:            4,
	})
	if res.Crashes == 0 {
		t.Fatal("no crashes injected")
	}
	if res.Availability >= 1 {
		t.Errorf("availability = %v with a single crashing replica, expected < 1", res.Availability)
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	res := run(t, Config{
		Replicas: 2,
		Queries:  150,
		Params:   core.Params{Epsilon: 0.25, Seed: 5},
		Seed:     5,
	})
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("latency percentiles p50=%v p99=%v", res.P50, res.P99)
	}
}

func TestSortedRecordsByCompletion(t *testing.T) {
	res := run(t, Config{
		Replicas: 2,
		Queries:  60,
		Params:   core.Params{Epsilon: 0.25, Seed: 5},
		Seed:     6,
	})
	sorted := res.SortedRecords()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].DoneAt < sorted[i-1].DoneAt {
			t.Fatal("SortedRecords not ordered by completion")
		}
	}
}

func TestQueueingRaisesLatencyUnderLoad(t *testing.T) {
	// Overloaded regime: arrivals far faster than service. With FIFO
	// queues per replica, later queries must wait, so p99 latency far
	// exceeds the raw service time.
	res := run(t, Config{
		Replicas:        2,
		Queries:         200,
		Params:          core.Params{Epsilon: 0.25, Seed: 5},
		ArrivalInterval: 1 * time.Millisecond,
		ServiceTime:     10 * time.Millisecond,
		Seed:            21,
	})
	if res.P99 < 50*time.Millisecond {
		t.Errorf("p99 = %v under 10x overload, expected queueing delay", res.P99)
	}
	if res.Availability != 1 {
		t.Errorf("availability = %v (queueing must not drop queries)", res.Availability)
	}
}

func TestLeastBusySpreadsLoadEvenly(t *testing.T) {
	cfg := Config{
		Replicas:        4,
		Queries:         400,
		Params:          core.Params{Epsilon: 0.25, Seed: 5},
		ArrivalInterval: 1 * time.Millisecond,
		ServiceTime:     8 * time.Millisecond,
		Seed:            22,
	}
	cfg.Policy = PolicyLeastBusy
	lb := run(t, cfg)

	spread := func(served []int) int {
		lo, hi := served[0], served[0]
		for _, c := range served[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return hi - lo
	}
	// Least-busy routing balances within a tight band.
	if s := spread(lb.PerReplicaServed); s > 60 {
		t.Errorf("least-busy spread = %d (%v), want tight balance",
			s, lb.PerReplicaServed)
	}
	// And it should not hurt latency relative to random routing.
	cfg.Policy = PolicyRandom
	random := run(t, cfg)
	if lb.P99 > random.P99*3 {
		t.Errorf("least-busy p99 %v much worse than random %v", lb.P99, random.P99)
	}
}

func TestPowerOfTwoBalancesBetterThanRandom(t *testing.T) {
	cfg := Config{
		Replicas:        4,
		Queries:         400,
		Params:          core.Params{Epsilon: 0.25, Seed: 5},
		ArrivalInterval: 1 * time.Millisecond,
		ServiceTime:     8 * time.Millisecond,
		Seed:            23,
	}
	spread := func(served []int) int {
		lo, hi := served[0], served[0]
		for _, c := range served[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		return hi - lo
	}
	cfg.Policy = PolicyPowerOfTwo
	p2c := run(t, cfg)
	cfg.Policy = PolicyRandom
	random := run(t, cfg)
	// The classic power-of-two-choices result: sampling just two queues
	// collapses the load imbalance of purely random routing.
	if spread(p2c.PerReplicaServed) >= spread(random.PerReplicaServed) {
		t.Errorf("p2c spread %v (%d) not tighter than random %v (%d)",
			p2c.PerReplicaServed, spread(p2c.PerReplicaServed),
			random.PerReplicaServed, spread(random.PerReplicaServed))
	}
	if p2c.Availability != 1 {
		t.Errorf("p2c availability = %v without failures, want 1", p2c.Availability)
	}
}

func TestGatewayFailoverScenarioUnderP2C(t *testing.T) {
	// The simulated twin of the gateway's serving posture: power-of-two
	// routing with per-query failover under crash/restart churn. The
	// operator-visible outcome must match the live e2e test —
	// availability stays high, and every repeatedly-answered item is
	// answered unanimously no matter which replica survived to serve it.
	res := run(t, Config{
		Replicas:        3,
		Queries:         300,
		Params:          core.Params{Epsilon: 0.25, Seed: 5},
		ArrivalInterval: 15 * time.Millisecond,
		MTBF:            40 * time.Millisecond,
		RepairTime:      30 * time.Millisecond,
		ServiceTime:     8 * time.Millisecond,
		Policy:          PolicyPowerOfTwo,
		Seed:            24,
	})
	if res.Crashes == 0 {
		t.Fatal("failure injection produced no crashes")
	}
	if res.MeanRetries == 0 {
		t.Error("churn produced no failovers")
	}
	if res.Availability < 0.85 {
		t.Errorf("availability = %v under churn with p2c, want >= 0.85", res.Availability)
	}
	if res.Consistency != 1 {
		t.Errorf("consistency = %v; failover must never change an answer (Theorem 4.1)", res.Consistency)
	}
}
