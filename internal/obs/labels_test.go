package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterVecExposition(t *testing.T) {
	v := NewCounterVec("tenant", 8)
	v.With("i17-s7").Add(3)
	v.With("i99-s8").Inc()
	v.With("i17-s7").Inc() // same child

	reg := NewRegistry()
	reg.MustRegister("lcakp_tenant_queries_total", "per-tenant queries", v)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lcakp_tenant_queries_total counter",
		`lcakp_tenant_queries_total{tenant="i17-s7"} 4`,
		`lcakp_tenant_queries_total{tenant="i99-s8"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by label value: i17 before i99.
	if strings.Index(out, `tenant="i17-s7"`) > strings.Index(out, `tenant="i99-s8"`) {
		t.Errorf("children not sorted by label value:\n%s", out)
	}
}

func TestCounterVecOverflow(t *testing.T) {
	v := NewCounterVec("tenant", 2)
	v.With("a").Inc()
	v.With("b").Inc()
	// Beyond the limit every new value shares the overflow child.
	v.With("c").Inc()
	v.With("d").Add(2)
	if n := v.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2 (overflow not counted)", n)
	}
	var b strings.Builder
	if err := v.expose(&b, "m"); err != nil {
		t.Fatalf("expose: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `m{tenant="_overflow"} 3`) {
		t.Errorf("overflow child missing or wrong:\n%s", out)
	}
	if strings.Contains(out, `tenant="c"`) || strings.Contains(out, `tenant="d"`) {
		t.Errorf("out-of-budget values leaked their own children:\n%s", out)
	}
}

func TestCounterVecAttachFuncAndForget(t *testing.T) {
	v := NewCounterVec("tenant", 4)
	n := int64(7)
	if err := v.AttachFunc("x", func() int64 { return n }); err != nil {
		t.Fatalf("attach: %v", err)
	}
	var b strings.Builder
	_ = v.expose(&b, "m")
	if !strings.Contains(b.String(), `m{tenant="x"} 7`) {
		t.Errorf("attached func not exposed:\n%s", b.String())
	}
	// Replacing an attached child is allowed (re-derivation path).
	if err := v.AttachFunc("x", func() int64 { return 9 }); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	v.Forget("x")
	if v.Len() != 0 {
		t.Fatalf("Len after Forget = %d, want 0", v.Len())
	}
	// Attaching beyond the limit fails rather than growing the family.
	small := NewCounterVec("tenant", 1)
	small.With("a")
	if err := small.AttachFunc("b", func() int64 { return 0 }); err == nil {
		t.Error("AttachFunc beyond limit should fail")
	}
}

func TestGaugeVecExposition(t *testing.T) {
	v := NewGaugeVec("replica", 8)
	v.With("127.0.0.1:1").Set(1)
	if err := v.AttachFunc("127.0.0.1:2", func() float64 { return 0.5 }); err != nil {
		t.Fatalf("attach: %v", err)
	}
	var b strings.Builder
	if err := v.expose(&b, "breaker_state"); err != nil {
		t.Fatalf("expose: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`breaker_state{replica="127.0.0.1:1"} 1`,
		`breaker_state{replica="127.0.0.1:2"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecExposition(t *testing.T) {
	v := NewHistogramVec("tenant", 4)
	v.With("a").Observe(time.Millisecond)
	v.With("a").Observe(2 * time.Millisecond)
	v.With("b").Observe(time.Second)

	reg := NewRegistry()
	reg.MustRegister("lcakp_tenant_latency_seconds", "per-tenant latency", v)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lcakp_tenant_latency_seconds summary",
		`lcakp_tenant_latency_seconds{tenant="a",quantile="0.5"}`,
		`lcakp_tenant_latency_seconds_count{tenant="a"} 2`,
		`lcakp_tenant_latency_seconds_count{tenant="b"} 1`,
		"# TYPE lcakp_tenant_latency_seconds_max gauge",
		`lcakp_tenant_latency_seconds_max{tenant="b"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	v := NewCounterVec("tenant", 4)
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := v.expose(&b, "m"); err != nil {
		t.Fatalf("expose: %v", err)
	}
	want := `m{tenant="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped exposition = %q, want substring %q", b.String(), want)
	}
}

func TestVecConcurrentWith(t *testing.T) {
	v := NewCounterVec("tenant", 64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				v.With("shared").Inc()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := v.With("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}
