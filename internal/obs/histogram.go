package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values (nanoseconds) below subBucketCount
// get exact buckets; above, each power-of-two range is split into
// subBucketCount log-linear sub-buckets, bounding the relative
// quantile error at 1/subBucketCount (~6%) across the full int64
// range — the HDR-histogram layout, sized for latencies from 1ns to
// ~292 years.
const (
	subBucketBits  = 4
	subBucketCount = 1 << subBucketBits // 16
	// numBuckets covers exponents subBucketBits..62 at subBucketCount
	// buckets each (62 is the leading-bit position of MaxInt64, the
	// largest representable observation), plus the subBucketCount exact
	// low buckets.
	numBuckets = (62 - subBucketBits + 1 + 1) * subBucketCount
)

// Histogram is a concurrent log-bucketed latency histogram: lock-free
// recording (a handful of atomic adds per observation, no allocation),
// quantile readouts on demand. The zero value is ready to use; a
// Histogram must not be copied after first use.
//
// Recording and reading race benignly: quantiles computed mid-stream
// reflect some subset of concurrent observations, but count, sum, and
// max are each individually exact once writers quiesce.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
	counts [numBuckets]atomic.Int64
	// exemplars holds, per bucket, the latest traced observation that
	// landed there: a lock-free atomic pointer swap on write, so the
	// p99 bucket always names a concrete replayable trace. Untraced
	// observations never touch it.
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one recorded observation back to the trace that
// produced it — the OpenMetrics exemplar attached to a histogram
// bucket. Tenant labels which tenant's query it was ("" when untenanted).
type Exemplar struct {
	Trace  TraceID
	Tenant string
	Value  time.Duration
}

// NewHistogram returns a fresh histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveExemplar records one latency and, when trace is nonzero,
// swaps the observation in as its bucket's exemplar. The swap is one
// atomic pointer store — concurrent observers race benignly; some
// traced observation for the bucket wins. Only traced observations
// (fetch/decision paths) pay the exemplar allocation; the cached hot
// path calls plain Observe and stays allocation-free.
func (h *Histogram) ObserveExemplar(d time.Duration, trace TraceID, tenant string) {
	h.Observe(d)
	if trace == 0 {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	ex := &Exemplar{Trace: trace, Tenant: tenant, Value: time.Duration(v)} //lint:alloc one exemplar box per traced observation; traced queries opt into this cost
	h.exemplars[bucketIndex(v)].Store(ex)
}

// ExemplarNear returns the exemplar closest to the q-quantile bucket —
// the bucket itself if it holds one, else the nearest lower bucket,
// else the nearest higher. ok is false when no traced observation has
// been recorded at all.
func (h *Histogram) ExemplarNear(q float64) (Exemplar, bool) {
	idx := h.quantileBucket(q)
	if idx < 0 {
		return Exemplar{}, false
	}
	for i := idx; i >= 0; i-- {
		if ex := h.exemplars[i].Load(); ex != nil {
			return *ex, true
		}
	}
	for i := idx + 1; i < numBuckets; i++ {
		if ex := h.exemplars[i].Load(); ex != nil {
			return *ex, true
		}
	}
	return Exemplar{}, false
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound on the q-quantile (q in [0, 1]) of
// the recorded distribution, within one sub-bucket (~6% relative
// error). It returns 0 when nothing has been recorded. Quantile is
// monotone in q by construction: larger q can only land in the same
// or a later bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	if i := h.quantileBucket(q); i >= 0 {
		return time.Duration(bucketUpper(i))
	}
	return 0
}

// quantileBucket returns the bucket index holding the q-quantile
// observation, or -1 when the histogram is empty.
func (h *Histogram) quantileBucket(q float64) int {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var counts [numBuckets]int64
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return -1
	}
	// rank is the 1-based index of the q-quantile observation.
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range counts {
		seen += counts[i]
		if seen >= rank {
			return i
		}
	}
	return numBuckets - 1
}

// Snapshot is a point-in-time readout of a histogram.
type Snapshot struct {
	// Count is the number of observations and Sum their exact total.
	Count int64
	Sum   time.Duration
	// P50, P95, and P99 are bucket-upper-bound quantiles; Max is exact.
	P50, P95, P99, Max time.Duration
}

// Snapshot returns the histogram's current readout.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

func (h *Histogram) kind() string { return "summary" }

// expose writes the histogram as a Prometheus summary (quantiles in
// seconds) plus a companion <name>_max gauge — plain text format
// 0.0.4, no exemplar annotations. Exemplars are not legal on summary
// quantiles in any exposition format (the classic text parser allows
// only a timestamp after the value, and OpenMetrics restricts
// exemplars to counters and histogram buckets), so they live solely in
// the package's extended exposition (exposeExemplars), served on
// /debug/exemplars and consumed by the push path.
func (h *Histogram) expose(w io.Writer, name string) error {
	return h.exposeWith(w, name, false)
}

// exposeExemplars writes the same summary with the package's exemplar
// annotation (`# {trace_id="...",tenant="..."} v`) appended to any
// quantile line whose bucket neighborhood holds a traced observation,
// linking a tail reading to a replayable trace. This extended format
// is NOT scrapeable Prometheus text — it must never be served on
// /metrics.
func (h *Histogram) exposeExemplars(w io.Writer, name string) error {
	return h.exposeWith(w, name, true)
}

func (h *Histogram) exposeWith(w io.Writer, name string, exemplars bool) error {
	s := h.Snapshot()
	for _, qv := range [...]struct {
		q  string
		qf float64
		v  time.Duration
	}{{"0.5", 0.50, s.P50}, {"0.95", 0.95, s.P95}, {"0.99", 0.99, s.P99}} {
		suffix := ""
		if exemplars {
			if ex, ok := h.ExemplarNear(qv.qf); ok {
				suffix = exemplarSuffix(ex)
			}
		}
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s%s\n", name, qv.q, formatFloat(qv.v.Seconds()), suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(s.Sum.Seconds())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %s\n", name, name, formatFloat(s.Max.Seconds())); err != nil {
		return err
	}
	return nil
}

// exemplarSuffix renders the OpenMetrics-style exemplar annotation the
// extended exposition appends to a sample line:
// ` # {trace_id="...",tenant="..."} <seconds>`.
func exemplarSuffix(ex Exemplar) string {
	labels := `trace_id="` + ex.Trace.String() + `"`
	if ex.Tenant != "" {
		labels += `,tenant="` + escapeLabelValue(ex.Tenant) + `"`
	}
	return " # {" + labels + "} " + formatFloat(ex.Value.Seconds())
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBucketCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the leading one, >= subBucketBits
	sub := (u >> uint(exp-subBucketBits)) & (subBucketCount - 1)
	return (exp-subBucketBits+1)<<subBucketBits + int(sub)
}

// bucketUpper returns the inclusive upper bound of bucket i — the
// conservative representative Quantile reports.
func bucketUpper(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	block := i >> subBucketBits // >= 1
	exp := uint(block + subBucketBits - 1)
	sub := uint64(i & (subBucketCount - 1))
	width := uint64(1) << (exp - subBucketBits)
	upper := uint64(1)<<exp + sub*width + width - 1
	const maxInt64 = uint64(^uint64(0) >> 1)
	if upper > maxInt64 { // the topmost buckets straddle the int64 limit
		return int64(maxInt64)
	}
	return int64(upper)
}
