package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the push half of the observability story: a
// dependency-free exporter that periodically POSTs the registry's
// metrics and the recorder's newly finished spans as OTLP-flavored
// JSON. "OTLP-shaped" means the payload mirrors the OTLP/JSON field
// layout (resourceMetrics/resourceSpans, dataPoints, events,
// hex-string IDs, unix-nano string timestamps) closely enough that the
// data model transfers, without importing any collector or protobuf
// dependency. cmd/lcaobs is the matching collector.

// OTLP-shaped payload types. These double as the wire contract between
// Pusher and cmd/lcaobs; both sides marshal/unmarshal the same structs.

// KV is one OTLP attribute.
type KV struct {
	Key   string   `json:"key"`
	Value AnyValue `json:"value"`
}

// AnyValue is the OTLP attribute value union (the subset used here).
type AnyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

// stringKV builds a string attribute.
func stringKV(key, value string) KV {
	return KV{Key: key, Value: AnyValue{StringValue: &value}}
}

// Str returns the attribute's string form regardless of its kind.
func (v AnyValue) Str() string {
	if v.StringValue != nil {
		return *v.StringValue
	}
	if v.DoubleValue != nil {
		return formatFloat(*v.DoubleValue)
	}
	return ""
}

// PushPayload is one pushed envelope.
type PushPayload struct {
	ResourceMetrics []ResourceMetrics `json:"resourceMetrics,omitempty"`
	ResourceSpans   []ResourceSpans   `json:"resourceSpans,omitempty"`
}

// ResourceMetrics groups metrics under one resource (process).
type ResourceMetrics struct {
	Resource     Resource       `json:"resource"`
	ScopeMetrics []ScopeMetrics `json:"scopeMetrics"`
}

// Resource identifies the producing process via attributes
// (service.name, service.instance.id).
type Resource struct {
	Attributes []KV `json:"attributes,omitempty"`
}

// Attr returns the named resource attribute ("" when absent).
func (r Resource) Attr(key string) string {
	for _, kv := range r.Attributes {
		if kv.Key == key {
			return kv.Value.Str()
		}
	}
	return ""
}

// ScopeMetrics is one instrumentation scope's metrics.
type ScopeMetrics struct {
	Scope   Scope        `json:"scope"`
	Metrics []OTLPMetric `json:"metrics"`
}

// Scope names the producing instrumentation library.
type Scope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// OTLPMetric is one metric: exactly one of Sum or Gauge is set.
type OTLPMetric struct {
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Sum         *OTLPSum   `json:"sum,omitempty"`
	Gauge       *OTLPGauge `json:"gauge,omitempty"`
}

// OTLPSum is a monotonic cumulative sum (a counter).
type OTLPSum struct {
	DataPoints             []OTLPDataPoint `json:"dataPoints"`
	AggregationTemporality int             `json:"aggregationTemporality"` // 2 = cumulative
	IsMonotonic            bool            `json:"isMonotonic"`
}

// OTLPGauge is an instantaneous value (gauges and summary quantiles).
type OTLPGauge struct {
	DataPoints []OTLPDataPoint `json:"dataPoints"`
}

// OTLPDataPoint is one sample with its attributes and exemplars.
type OTLPDataPoint struct {
	Attributes   []KV           `json:"attributes,omitempty"`
	TimeUnixNano string         `json:"timeUnixNano"`
	AsDouble     float64        `json:"asDouble"`
	Exemplars    []OTLPExemplar `json:"exemplars,omitempty"`
}

// Attr returns the named data-point attribute ("" when absent).
func (p OTLPDataPoint) Attr(key string) string {
	for _, kv := range p.Attributes {
		if kv.Key == key {
			return kv.Value.Str()
		}
	}
	return ""
}

// OTLPExemplar links a data point to a trace.
type OTLPExemplar struct {
	TraceID            string  `json:"traceId,omitempty"`
	AsDouble           float64 `json:"asDouble"`
	FilteredAttributes []KV    `json:"filteredAttributes,omitempty"`
}

// ResourceSpans groups spans under one resource.
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// ScopeSpans is one instrumentation scope's spans.
type ScopeSpans struct {
	Scope Scope      `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLPSpan is one finished span with its events.
type OTLPSpan struct {
	TraceID           string          `json:"traceId"`
	SpanID            string          `json:"spanId"`
	ParentSpanID      string          `json:"parentSpanId,omitempty"`
	Name              string          `json:"name"`
	StartTimeUnixNano string          `json:"startTimeUnixNano"`
	EndTimeUnixNano   string          `json:"endTimeUnixNano"`
	Attributes        []KV            `json:"attributes,omitempty"`
	Events            []OTLPSpanEvent `json:"events,omitempty"`
}

// OTLPSpanEvent is one span event.
type OTLPSpanEvent struct {
	TimeUnixNano string `json:"timeUnixNano"`
	Name         string `json:"name"`
	Attributes   []KV   `json:"attributes,omitempty"`
}

// pushScopeName names this package as the instrumentation scope.
const pushScopeName = "lcakp/internal/obs"

// PusherOptions configures a Pusher. Endpoint is required; everything
// else has a default.
type PusherOptions struct {
	// Endpoint is the collector URL (cmd/lcaobs serves /v1/push).
	Endpoint string
	// Service names this process in the payload's resource attributes
	// (default "lcakp"); Instance distinguishes processes of one
	// service (default the process's tracer-seq-free best effort: the
	// endpoint caller should set it to its listen address).
	Service  string
	Instance string
	// Interval is the push period (default 5s).
	Interval time.Duration
	// Registry's metrics and Recorder's finished spans are pushed; each
	// may be nil.
	Registry *Registry
	Recorder *SpanRecorder
	// QueueLimit bounds the undelivered-payload queue (default 16).
	// When the collector is down the newest QueueLimit payloads are
	// retained and older ones dropped, counted by the drop counter.
	QueueLimit int
	// Timeout bounds each POST (default 5s). MaxBackoff caps the
	// failure backoff (default 30s; backoff starts at Interval and
	// doubles per consecutive failure).
	Timeout    time.Duration
	MaxBackoff time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Pusher periodically exports metrics and spans to a collector. Build
// with NewPusher, call Start, and Close on shutdown (Close performs a
// final flush). All exported state is operational-only: a slow or dead
// collector costs dropped payloads, never a blocked query.
type Pusher struct {
	opts   PusherOptions
	client *http.Client

	// flushMu serializes whole Flush runs (the loop's periodic flush,
	// explicit Flush calls, and Close's final flush). Only ever one
	// flusher builds, drains, and trims the queue at a time, so the
	// recorder cursor advances exactly once per drained span batch and
	// the queue-trim-by-prefix in Flush is sound: concurrent activity
	// can only append behind the flusher's snapshot.
	flushMu sync.Mutex

	mu      sync.Mutex
	cursor  uint64   // span-recorder drain cursor
	queue   [][]byte // encoded, undelivered payloads (oldest first)
	retryAt time.Time
	backoff time.Duration

	pushes     Counter // successful POSTs
	pushErrors Counter // failed POST attempts
	dropped    Counter // payloads dropped off the bounded queue
	spansSent  Counter // spans included in successful POSTs (approximate: spans enqueued)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewPusher builds a pusher; it does not start pushing until Start.
func NewPusher(o PusherOptions) (*Pusher, error) {
	if o.Endpoint == "" {
		return nil, fmt.Errorf("obs: pusher needs an endpoint")
	}
	if !strings.HasPrefix(o.Endpoint, "http://") && !strings.HasPrefix(o.Endpoint, "https://") {
		return nil, fmt.Errorf("obs: pusher endpoint %q is not an http(s) URL", o.Endpoint)
	}
	if o.Service == "" {
		o.Service = "lcakp"
	}
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 30 * time.Second
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: o.Timeout}
	}
	return &Pusher{
		opts:   o,
		client: client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// RegisterMetrics registers the pusher's own delivery counters under
// prefix (default "lcakp_push").
func (p *Pusher) RegisterMetrics(reg *Registry, prefix string) error {
	if prefix == "" {
		prefix = "lcakp_push"
	}
	for _, x := range []struct {
		name, help string
		c          *Counter
	}{
		{prefix + "_total", "Successful pushes to the collector.", &p.pushes},
		{prefix + "_errors_total", "Failed push attempts.", &p.pushErrors},
		{prefix + "_dropped_total", "Payloads dropped off the bounded retry queue.", &p.dropped},
		{prefix + "_spans_total", "Spans enqueued for push.", &p.spansSent},
	} {
		if err := reg.Register(x.name, x.help, x.c); err != nil {
			return fmt.Errorf("obs: pusher metrics: %w", err)
		}
	}
	return nil
}

// Start launches the background push loop. Safe to call once.
func (p *Pusher) Start() {
	p.startOnce.Do(func() { go p.loop() })
}

// Close stops the loop, attempts one final flush, and returns the
// final flush's error (nil when everything was delivered). The wait on
// the loop is bounded, but even when it times out the final flush
// cannot race an in-flight loop flush: Flush serializes on flushMu.
func (p *Pusher) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	select {
	case <-p.done:
	case <-time.After(p.opts.Timeout + time.Second):
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	return p.Flush(ctx)
}

// loop ticks at Interval, skipping deliveries while in failure backoff.
func (p *Pusher) loop() {
	defer close(p.done)
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.mu.Lock()
			wait := time.Until(p.retryAt)
			p.mu.Unlock()
			if wait > 0 {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
			_ = p.Flush(ctx)
			cancel()
		}
	}
}

// Flush builds one payload from the current metrics and the spans
// finished since the last build, enqueues it, and attempts to deliver
// the whole queue in order. On delivery failure the remaining queue is
// retained (bounded) and the failure backoff extended; the error of
// the first failed POST is returned. Concurrent Flush calls serialize:
// each payload is delivered (and each span batch drained from the
// recorder) at most once.
func (p *Pusher) Flush(ctx context.Context) error {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	payload, spanCount, err := p.buildPayload()
	if err != nil {
		return err
	}
	p.mu.Lock()
	if payload != nil {
		p.queue = append(p.queue, payload)
		p.spansSent.Add(int64(spanCount))
		for len(p.queue) > p.opts.QueueLimit {
			p.queue = p.queue[1:]
			p.dropped.Inc()
		}
	}
	pending := make([][]byte, len(p.queue))
	copy(pending, p.queue)
	p.mu.Unlock()

	for i, body := range pending {
		if err := p.post(ctx, body); err != nil {
			p.pushErrors.Inc()
			p.mu.Lock()
			// Only Flush mutates the queue and flushMu serializes Flush,
			// so pending is still exactly the queue: keep everything not
			// yet delivered by dropping the delivered prefix.
			p.queue = p.queue[i:]
			if p.backoff < p.opts.Interval {
				p.backoff = p.opts.Interval
			} else {
				p.backoff *= 2
			}
			if p.backoff > p.opts.MaxBackoff {
				p.backoff = p.opts.MaxBackoff
			}
			p.retryAt = time.Now().Add(p.backoff)
			p.mu.Unlock()
			return fmt.Errorf("obs: push to %s: %w", p.opts.Endpoint, err)
		}
		p.pushes.Inc()
	}
	p.mu.Lock()
	p.queue = p.queue[len(pending):]
	p.backoff = 0
	p.retryAt = time.Time{}
	p.mu.Unlock()
	return nil
}

// post delivers one payload.
func (p *Pusher) post(ctx context.Context, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.opts.Endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("collector returned %s", resp.Status)
	}
	return nil
}

// buildPayload encodes the current metrics plus newly finished spans.
// It returns (nil, 0, nil) when there is nothing to send.
func (p *Pusher) buildPayload() ([]byte, int, error) {
	var env PushPayload
	now := unixNano(time.Now())
	resource := Resource{Attributes: []KV{
		stringKV("service.name", p.opts.Service),
	}}
	if p.opts.Instance != "" {
		resource.Attributes = append(resource.Attributes, stringKV("service.instance.id", p.opts.Instance))
	}
	if p.opts.Registry != nil {
		metrics, err := p.metricsFromRegistry(now)
		if err != nil {
			return nil, 0, err
		}
		if len(metrics) > 0 {
			env.ResourceMetrics = []ResourceMetrics{{
				Resource:     resource,
				ScopeMetrics: []ScopeMetrics{{Scope: Scope{Name: pushScopeName}, Metrics: metrics}},
			}}
		}
	}
	spanCount := 0
	if p.opts.Recorder != nil {
		p.mu.Lock()
		cursor := p.cursor
		p.mu.Unlock()
		spans, next := p.opts.Recorder.SpansSince(cursor)
		p.mu.Lock()
		if next > p.cursor {
			p.cursor = next
		}
		p.mu.Unlock()
		if len(spans) > 0 {
			otlp := make([]OTLPSpan, 0, len(spans))
			for _, s := range spans {
				otlp = append(otlp, spanToOTLP(s))
			}
			spanCount = len(otlp)
			env.ResourceSpans = []ResourceSpans{{
				Resource:   resource,
				ScopeSpans: []ScopeSpans{{Scope: Scope{Name: pushScopeName}, Spans: otlp}},
			}}
		}
	}
	if env.ResourceMetrics == nil && env.ResourceSpans == nil {
		return nil, 0, nil
	}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, 0, fmt.Errorf("obs: encode push payload: %w", err)
	}
	return body, spanCount, nil
}

// metricsFromRegistry converts the registry's exposition into OTLP
// metrics via the shared parser — the exposition is the one source of
// truth for what this process reports, scraped or pushed. The push
// path reads the exemplar-annotated variant (the scrapeable /metrics
// output omits exemplars, which no scrape format permits on summary
// quantiles) so OTLP data points still carry their trace links.
func (p *Pusher) metricsFromRegistry(now string) ([]OTLPMetric, error) {
	var buf bytes.Buffer
	if err := p.opts.Registry.WriteExemplarExposition(&buf); err != nil {
		return nil, fmt.Errorf("obs: snapshot registry: %w", err)
	}
	families, err := ParseExposition(&buf)
	if err != nil {
		return nil, fmt.Errorf("obs: own exposition failed to parse: %w", err)
	}
	metrics := make([]OTLPMetric, 0, len(families))
	for _, fam := range families {
		m := OTLPMetric{Name: fam.Name, Description: fam.Help}
		points := make([]OTLPDataPoint, 0, len(fam.Samples))
		for _, s := range fam.Samples {
			dp := OTLPDataPoint{TimeUnixNano: now, AsDouble: s.Value}
			for _, l := range s.Labels {
				dp.Attributes = append(dp.Attributes, stringKV(l.Key, l.Value))
			}
			if s.Name != fam.Name {
				// A summary's _sum/_count companion: keep the suffix as
				// an attribute so the family stays one OTLP metric.
				dp.Attributes = append(dp.Attributes, stringKV("sample", strings.TrimPrefix(s.Name, fam.Name+"_")))
			}
			if s.Exemplar != nil {
				dp.Exemplars = append(dp.Exemplars, OTLPExemplar{
					TraceID:  s.Exemplar.Label("trace_id"),
					AsDouble: s.Exemplar.Value,
					FilteredAttributes: []KV{
						stringKV("tenant", s.Exemplar.Label("tenant")),
					},
				})
			}
			points = append(points, dp)
		}
		switch fam.Type {
		case "counter":
			m.Sum = &OTLPSum{DataPoints: points, AggregationTemporality: 2, IsMonotonic: true}
		default: // gauge, summary
			m.Gauge = &OTLPGauge{DataPoints: points}
		}
		metrics = append(metrics, m)
	}
	return metrics, nil
}

// spanToOTLP converts one finished span.
func spanToOTLP(s Span) OTLPSpan {
	out := OTLPSpan{
		TraceID:           s.Trace.String(),
		SpanID:            s.ID.String(),
		Name:              s.Name,
		StartTimeUnixNano: unixNano(s.Start),
		EndTimeUnixNano:   unixNano(s.Start.Add(s.Duration)),
	}
	if s.Parent != 0 {
		out.ParentSpanID = s.Parent.String()
	}
	if s.Probes > 0 {
		out.Attributes = append(out.Attributes, stringKV("lca.probes", strconv.FormatInt(s.Probes, 10)))
	}
	if s.EventsDropped > 0 {
		out.Attributes = append(out.Attributes, stringKV("lca.events_dropped", strconv.FormatInt(int64(s.EventsDropped), 10)))
	}
	for _, e := range s.Events {
		ev := OTLPSpanEvent{
			TimeUnixNano: unixNano(e.Time),
			Name:         e.Name,
			Attributes: []KV{
				stringKV("level", e.Level.String()),
				stringKV("probes", strconv.FormatInt(e.Probes, 10)),
			},
		}
		for _, a := range e.Attrs {
			ev.Attributes = append(ev.Attributes, stringKV(a.Key, a.Value))
		}
		out.Events = append(out.Events, ev)
	}
	return out
}

// unixNano renders a timestamp in OTLP/JSON's string-encoded
// nanosecond form.
func unixNano(t time.Time) string {
	if t.IsZero() {
		return "0"
	}
	return strconv.FormatInt(t.UnixNano(), 10)
}
