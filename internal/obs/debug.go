package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugServer is the operator-facing HTTP sidecar of a serving daemon:
// /metrics (strictly plain Prometheus text 0.0.4, scrapeable by any
// collector), /debug/exemplars (the same exposition with the package's
// exemplar annotations on quantile lines — the forensics view linking
// tail buckets to trace IDs), /debug/pprof/* (net/http/pprof), and —
// when a span recorder is attached — /debug/traces (the -trace dump
// format; ?trace=<id> filters to one trace, ?limit=N keeps the newest
// N spans) plus /debug/slow (the slow-trace capture ring as JSON) when
// a SlowTraceLog is attached. It binds its own listener so the
// wire-protocol port stays exclusively the query protocol's.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugServer listens on addr (use "127.0.0.1:0" for an ephemeral
// port) and serves the debug surface in a background goroutine. reg
// may be nil (no /metrics); rec may be nil (no /debug/traces); slow
// may be nil (no /debug/slow).
func NewDebugServer(addr string, reg *Registry, rec *SpanRecorder, slow *SlowTraceLog) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
		// The exemplar-annotated exposition is not valid Prometheus text
		// (exemplars are illegal on summary quantiles in every scrape
		// format), so it lives on the debug surface instead of /metrics.
		mux.HandleFunc("/debug/exemplars", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = reg.WriteExemplarExposition(w)
		})
	}
	if rec != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			if q := r.URL.Query().Get("trace"); q != "" {
				id, err := ParseTraceID(q)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_ = rec.WriteTrace(w, id)
				return
			}
			if ls := r.URL.Query().Get("limit"); ls != "" {
				n, err := strconv.Atoi(ls)
				if err != nil || n < 0 {
					http.Error(w, fmt.Sprintf("bad limit %q", ls), http.StatusBadRequest)
					return
				}
				spans := rec.Spans()
				if n < len(spans) {
					spans = spans[len(spans)-n:]
				}
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprintf(w, "# %d spans shown (%d recorded)\n", len(spans), rec.Total())
				_ = writeSpansText(w, spans)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = rec.WriteText(w)
		})
	}
	if slow != nil {
		mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = slow.WriteJSON(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
