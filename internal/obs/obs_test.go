package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryRegisterAndExpose(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_queries_total", "queries served")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("test_temperature", "current value")
	g.Set(3.5)
	reg.MustRegister("test_healthy", "healthy backends", GaugeFunc(func() float64 { return 2 }))
	reg.MustRegister("test_requests_total", "requests", CounterFunc(func() int64 { return 7 }))
	h := reg.Histogram("test_latency_seconds", "query latency")
	h.Observe(time.Millisecond)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_queries_total queries served",
		"# TYPE test_queries_total counter",
		"test_queries_total 42",
		"# TYPE test_temperature gauge",
		"test_temperature 3.5",
		"test_healthy 2",
		"test_requests_total 7",
		"# TYPE test_latency_seconds summary",
		`test_latency_seconds{quantile="0.5"}`,
		"test_latency_seconds_count 1",
		"# TYPE test_latency_seconds_max gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Sorted by name: deterministic scrape bytes.
	if i, j := strings.Index(out, "test_healthy"), strings.Index(out, "test_temperature"); i > j {
		t.Error("exposition not sorted by metric name")
	}
	var sb2 strings.Builder
	if err := reg.WritePrometheus(&sb2); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if sb2.String() != out {
		t.Error("two scrapes of unchanged state differ; exposition must be deterministic")
	}
}

func TestRegistryRejectsBadAndDuplicateNames(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("9starts_with_digit", "", NewCounter()); err == nil {
		t.Error("Register accepted a name starting with a digit")
	}
	if err := reg.Register("has spaces", "", NewCounter()); err == nil {
		t.Error("Register accepted a name with spaces")
	}
	if err := reg.Register("", "", NewCounter()); err == nil {
		t.Error("Register accepted an empty name")
	}
	if err := reg.Register("ok_name", "", nil); err == nil {
		t.Error("Register accepted a nil metric")
	}
	if err := reg.Register("dup", "", NewCounter()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register("dup", "", NewCounter()); err == nil {
		t.Error("Register accepted a duplicate name")
	}
	// Get-or-create returns the same instance; a kind clash panics.
	if reg.Counter("shared_total", "") != reg.Counter("shared_total", "") {
		t.Error("Counter get-or-create returned distinct instances")
	}
	defer func() {
		if recover() == nil {
			t.Error("Histogram over an existing counter name did not panic")
		}
	}()
	reg.Histogram("shared_total", "")
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("con_total", "").Inc()
				reg.Histogram("con_latency_seconds", "").Observe(time.Microsecond)
				_ = reg.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("con_total", "").Value(); got != 8*200 {
		t.Errorf("counter = %d, want %d", got, 8*200)
	}
}

func TestDebugServerServesMetricsTracesAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dbg_hits_total", "hits").Add(5)
	tr := NewTracer(16)
	_, span := tr.StartSpan(t.Context(), "dbg.work")
	span.End()

	d, err := NewDebugServer("127.0.0.1:0", reg, tr.Recorder(), nil)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "dbg_hits_total 5") {
		t.Errorf("/metrics missing counter; got:\n%s", body)
	}
	if body := get("/debug/traces"); !strings.Contains(body, "name=dbg.work") {
		t.Errorf("/debug/traces missing span; got:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned an empty body")
	}
}
