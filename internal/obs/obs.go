// Package obs is the observability subsystem of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges, and
// log-bucketed latency histograms), a Prometheus-text exposition
// surface, and trace propagation primitives (trace IDs carried through
// context.Context with a fixed-size ring-buffer span recorder).
//
// The LCA model's defining property is bounded per-query cost
// (Definition 2.2 prices every membership query in oracle accesses),
// so per-query counters and latency distributions are the system's
// primary correctness-adjacent signal: a replica whose probe counts
// drift has a bug, not a load problem. obs makes that signal scrapable
// — over HTTP (/metrics) and over the cluster wire protocol
// (MsgMetrics) — without adding any dependency or touching an answer
// bit: every value here is operational-only and can never influence
// C(I, r).
//
// The package deliberately implements a small subset of the Prometheus
// data model on the standard library alone: counters and gauges map
// directly, and histograms are exposed as summaries with precomputed
// p50/p95/p99 quantiles (the scrape-side aggregation a full histogram
// would enable is not worth a dependency here).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metric is one registerable metric kind. The interface is closed
// (unexported methods): Counter, Gauge, Histogram, CounterFunc, and
// GaugeFunc are the supported kinds.
type Metric interface {
	// kind returns the Prometheus TYPE keyword.
	kind() string
	// expose writes the metric's sample lines (no HELP/TYPE headers).
	expose(w io.Writer, name string) error
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a Counter must not be copied after first use.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a fresh counter at zero.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n (n must be non-negative; decrements
// would break the monotonicity scrape consumers rely on).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) kind() string { return "counter" }

func (c *Counter) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
	return err
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use; a Gauge must not be copied after first use.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a fresh gauge at zero.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) kind() string { return "gauge" }

func (g *Gauge) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
	return err
}

// CounterFunc adapts a read callback into a counter metric — the
// bridge for pre-existing atomic tallies (server stats, engine totals)
// that should appear on a scrape without migrating their write path.
// The callback must be safe for concurrent use and monotone.
type CounterFunc func() int64

func (f CounterFunc) kind() string { return "counter" }

func (f CounterFunc) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, f())
	return err
}

// GaugeFunc adapts a read callback into a gauge metric (healthy
// replica counts, pool sizes). The callback must be safe for
// concurrent use.
type GaugeFunc func() float64

func (f GaugeFunc) kind() string { return "gauge" }

func (f GaugeFunc) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(f()))
	return err
}

// entry is one registered metric with its exposition metadata.
type entry struct {
	name   string
	help   string
	metric Metric
}

// Registry is a concurrent collection of named metrics with a
// Prometheus-text exposition. Registration is rare and lock-guarded;
// metric updates go straight to the metric's atomics and never touch
// the registry, so instrumented hot paths pay no registry cost.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]entry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]entry)}
}

// Register adds m under name. Names must match the Prometheus metric
// grammar ([a-zA-Z_:][a-zA-Z0-9_:]*) and be unique within the
// registry.
func (r *Registry) Register(name, help string, m Metric) error {
	if !validMetricName(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	if m == nil {
		return fmt.Errorf("obs: register %s: nil metric", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("obs: metric %s already registered", name)
	}
	r.entries[name] = entry{name: name, help: help, metric: m}
	return nil
}

// MustRegister is Register, panicking on error — for wiring done once
// at startup where a bad name is a programming error.
func (r *Registry) MustRegister(name, help string, m Metric) {
	if err := r.Register(name, help, m); err != nil {
		panic(err)
	}
}

// Counter returns the counter registered under name, creating and
// registering it on first use. It panics if name is invalid or already
// registered as a different kind.
func (r *Registry) Counter(name, help string) *Counter {
	if m := r.lookup(name); m != nil {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %s is a %s, not a counter", name, m.kind()))
		}
		return c
	}
	c := NewCounter()
	r.MustRegister(name, help, c)
	return c
}

// Gauge returns the gauge registered under name, creating and
// registering it on first use. It panics if name is invalid or already
// registered as a different kind.
func (r *Registry) Gauge(name, help string) *Gauge {
	if m := r.lookup(name); m != nil {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %s is a %s, not a gauge", name, m.kind()))
		}
		return g
	}
	g := NewGauge()
	r.MustRegister(name, help, g)
	return g
}

// Histogram returns the histogram registered under name, creating and
// registering it on first use. It panics if name is invalid or already
// registered as a different kind.
func (r *Registry) Histogram(name, help string) *Histogram {
	if m := r.lookup(name); m != nil {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %s is a %s, not a histogram", name, m.kind()))
		}
		return h
	}
	h := NewHistogram()
	r.MustRegister(name, help, h)
	return h
}

// lookup returns the metric registered under name, or nil.
func (r *Registry) lookup(name string) Metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.entries[name]; ok {
		return e.metric
	}
	return nil
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by name so scrapes —
// which travel over protocol frames — are byte-deterministic for a
// given metric state. The output is strictly plain 0.0.4: no exemplar
// annotations, so any Prometheus/promtool scrape parses it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteExemplarExposition writes the same exposition with the
// package's exemplar annotations appended to histogram quantile lines
// (` # {trace_id="...",tenant="..."} v`). This extended format is the
// in-repo forensics contract — ParseExposition reads it and the push
// path converts it to OTLP exemplars — but it is NOT valid Prometheus
// 0.0.4 or OpenMetrics (neither permits exemplars on summary
// quantiles), so it is served only on /debug/exemplars, never
// /metrics.
func (r *Registry) WriteExemplarExposition(w io.Writer) error {
	return r.writeExposition(w, true)
}

// exemplarExposer is the optional Metric extension for kinds that can
// annotate their samples with exemplars in the extended exposition.
type exemplarExposer interface {
	exposeExemplars(w io.Writer, name string) error
}

func (r *Registry) writeExposition(w io.Writer, exemplars bool) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	entries := make([]entry, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		entries = append(entries, r.entries[name])
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.metric.kind()); err != nil {
			return err
		}
		if ee, ok := e.metric.(exemplarExposer); ok && exemplars {
			if err := ee.exposeExemplars(bw, e.name); err != nil {
				return err
			}
			continue
		}
		if err := e.metric.expose(bw, e.name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry's exposition —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// formatFloat renders a float sample value in the shortest exact form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
