package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is a validating parser for the exposition text the
// Registry writes — the Prometheus 0.0.4 text format
// (WritePrometheus, served on /metrics) plus the package's extended
// variant carrying OpenMetrics-style exemplar annotations on summary
// quantile lines (WriteExemplarExposition, served on /debug/exemplars
// and consumed by the push path; never /metrics, since no scrape
// format permits exemplars there). It is what keeps the exposition
// honest: the golden test round-trips /metrics through it, the Pusher
// converts families into OTLP-shaped payloads with it, and any drift
// between writer and grammar fails loudly instead of silently
// producing unscrapable text.

// Family is one parsed metric family: a TYPE header and its samples.
type Family struct {
	Name string
	Help string
	Type string // counter | gauge | summary
	// Samples are the family's sample lines in exposition order. A
	// summary's _sum/_count lines appear here with their full names.
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name, including any _sum/_count suffix.
	Name string
	// Labels are the label pairs in exposition order.
	Labels []Attr
	Value  float64
	// Exemplar is the OpenMetrics exemplar annotation, if present.
	Exemplar *SampleExemplar
}

// SampleExemplar is a parsed `# {labels} value` exemplar annotation.
type SampleExemplar struct {
	Labels []Attr
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Key == name {
			return l.Value
		}
	}
	return ""
}

// Label returns the value of the named exemplar label ("" when absent).
func (e *SampleExemplar) Label(name string) string {
	if e == nil {
		return ""
	}
	for _, l := range e.Labels {
		if l.Key == name {
			return l.Value
		}
	}
	return ""
}

// validExpositionTypes are the TYPE keywords the Registry emits.
var validExpositionTypes = map[string]bool{
	"counter": true,
	"gauge":   true,
	"summary": true,
}

// ParseExposition parses Prometheus-text exposition into families,
// validating the grammar as it goes: TYPE before samples, sample names
// matching their family (allowing the summary _sum/_count companions),
// well-formed label sets, parseable values, and well-formed exemplar
// annotations. It returns the families in exposition order.
func ParseExposition(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		families []Family
		cur      *Family
		help     = map[string]string{}
		seen     = map[string]bool{}
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, h, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: bad HELP metric name %q", lineNo, name)
			}
			help[name] = h
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !validExpositionTypes[kind] {
				return nil, fmt.Errorf("line %d: bad TYPE line %q", lineNo, line)
			}
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: bad TYPE metric name %q", lineNo, name)
			}
			if seen[name] {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			seen[name] = true
			families = append(families, Family{Name: name, Help: help[name], Type: kind})
			cur = &families[len(families)-1]
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unrecognized comment %q", lineNo, line)
		default:
			smp, err := parseSampleLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if cur == nil {
				return nil, fmt.Errorf("line %d: sample %s before any TYPE", lineNo, smp.Name)
			}
			if !sampleBelongs(cur, smp.Name) {
				return nil, fmt.Errorf("line %d: sample %s does not belong to family %s (%s)",
					lineNo, smp.Name, cur.Name, cur.Type)
			}
			if smp.Exemplar != nil && cur.Type != "summary" {
				return nil, fmt.Errorf("line %d: exemplar on non-summary family %s", lineNo, cur.Name)
			}
			cur.Samples = append(cur.Samples, smp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan exposition: %w", err)
	}
	return families, nil
}

// sampleBelongs reports whether a sample name is legal inside fam.
func sampleBelongs(fam *Family, name string) bool {
	if name == fam.Name {
		return true
	}
	if fam.Type == "summary" {
		return name == fam.Name+"_sum" || name == fam.Name+"_count"
	}
	return false
}

// parseSampleLine parses `name{labels} value` with an optional
// ` # {labels} value` exemplar annotation.
func parseSampleLine(line string) (Sample, error) {
	var smp Sample
	body := line
	// Split off the exemplar annotation first: " # {" cannot occur
	// inside a sample body written by this package (the sample value
	// follows the label set, and no metric here puts "# {" in a label
	// value).
	if i := strings.Index(line, " # {"); i >= 0 {
		exText := line[i+3:]
		body = line[:i]
		ex, err := parseExemplar(exText)
		if err != nil {
			return smp, err
		}
		smp.Exemplar = &ex
	}
	nameEnd := strings.IndexAny(body, "{ ")
	if nameEnd < 0 {
		return smp, fmt.Errorf("malformed sample line %q", line)
	}
	smp.Name = body[:nameEnd]
	if !validMetricName(smp.Name) {
		return smp, fmt.Errorf("bad sample name %q", smp.Name)
	}
	rest := body[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return smp, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabelSet(rest[1:end])
		if err != nil {
			return smp, err
		}
		smp.Labels = labels
		rest = rest[end+1:]
	}
	valText := strings.TrimSpace(rest)
	if valText == "" || strings.ContainsRune(valText, ' ') {
		return smp, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(valText, 64)
	if err != nil {
		return smp, fmt.Errorf("bad sample value %q: %w", valText, err)
	}
	smp.Value = v
	return smp, nil
}

// parseExemplar parses `{labels} value`.
func parseExemplar(text string) (SampleExemplar, error) {
	var ex SampleExemplar
	if !strings.HasPrefix(text, "{") {
		return ex, fmt.Errorf("malformed exemplar %q", text)
	}
	end := strings.Index(text, "}")
	if end < 0 {
		return ex, fmt.Errorf("unterminated exemplar label set in %q", text)
	}
	labels, err := parseLabelSet(text[1:end])
	if err != nil {
		return ex, err
	}
	ex.Labels = labels
	valText := strings.TrimSpace(text[end+1:])
	v, err := strconv.ParseFloat(valText, 64)
	if err != nil {
		return ex, fmt.Errorf("bad exemplar value %q: %w", valText, err)
	}
	ex.Value = v
	return ex, nil
}

// parseLabelSet parses `k1="v1",k2="v2"` (possibly empty), unescaping
// values.
func parseLabelSet(s string) ([]Attr, error) {
	var labels []Attr
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label set at %q", s)
		}
		key := s[:eq]
		if !validMetricName(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels = append(labels, Attr{Key: key, Value: b.String()})
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if s != "" {
			return nil, fmt.Errorf("malformed label separator at %q", s)
		}
	}
	return labels, nil
}
