package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// slowLog sizing bounds: pendingTraceLimit caps the number of traces
// buffered while still in flight, spansPerTraceLimit the spans buffered
// per trace. Both exist so a tracer that never completes traces (or a
// trace with a runaway span count) cannot grow the log without bound.
const (
	pendingTraceLimit   = 256
	spansPerTraceLimit  = 64
	defaultSlowCapacity = 64
)

// SlowTrace is one force-retained trace: the complete locally-observed
// span tree of a query that crossed the latency threshold or recorded
// a warn-level event.
type SlowTrace struct {
	Trace TraceID `json:"trace"`
	// CapturedAt stamps retention; Duration is the longest local span
	// (for a gateway, the whole query).
	CapturedAt time.Time     `json:"captured_at"`
	Duration   time.Duration `json:"duration_ns"`
	// Reason says what triggered capture: "threshold", or "event:<name>"
	// naming the first warn event seen.
	Reason string `json:"reason"`
	// Probes is the trace's total Def 2.2 probe count across its local
	// spans.
	Probes int64 `json:"probes"`
	// Spans is the trace's locally-observed span tree in start order,
	// capped at spansPerTraceLimit; SpansDropped counts spans beyond the
	// cap (a trace context reused across many queries cannot grow a ring
	// entry without bound). Duration and Probes still cover every span,
	// retained or dropped.
	Spans        []Span `json:"spans"`
	SpansDropped int    `json:"spans_dropped,omitempty"`
}

// pendingTrace buffers a trace's spans until every locally-started
// span has ended and the keep/discard decision can be made.
type pendingTrace struct {
	spans   []Span
	dropped int             // spans beyond spansPerTraceLimit, not buffered
	dur     time.Duration   // longest span seen, buffered or dropped
	probes  int64           // probe total across every span seen
	ids     map[SpanID]bool // locally-started span IDs (registered at start)
	started int
	ended   int
	hot     bool
	reason  string
}

// SlowTraceLog is the tail-based capture stage of the tracing pipeline:
// every finished span is offered to it, whole traces are retained when
// any of their spans exceeds the latency threshold or carries a
// warn-level event, and everything else is discarded at trace end.
// Unlike probabilistic head sampling, the decision is made after the
// outcome is known — the outliers are exactly the traces never lost.
//
// Retention is a fixed ring: the newest captures overwrite the oldest,
// and /debug/slow (or Captured) reads them newest-first.
type SlowTraceLog struct {
	threshold time.Duration

	mu      sync.Mutex
	pending map[TraceID]*pendingTrace
	order   []TraceID // pending traces in arrival order, for eviction
	ring    []SlowTrace
	next    int

	captured Counter // traces retained
	evicted  Counter // pending traces evicted before their top span ended
	examined Counter // traces examined (completed or evicted)
}

// NewSlowTraceLog builds a log retaining the last capacity slow traces
// (minimum 1; 0 picks a default). threshold is the capture latency: a
// span at or above it marks its whole trace slow. threshold <= 0
// disables the latency trigger — capture then fires only on warn
// events.
func NewSlowTraceLog(capacity int, threshold time.Duration) *SlowTraceLog {
	if capacity <= 0 {
		capacity = defaultSlowCapacity
	}
	return &SlowTraceLog{
		threshold: threshold,
		pending:   make(map[TraceID]*pendingTrace),
		ring:      make([]SlowTrace, 0, capacity),
	}
}

// Threshold returns the capture latency threshold.
func (l *SlowTraceLog) Threshold() time.Duration { return l.threshold }

// track registers a locally-started span with its trace's pending
// entry. Registration at start time is what lets offer tell a
// still-running local parent apart from a parent living in another
// process (a replica's engine span under a gateway's wire parent):
// only local spans ever appear in pt.ids.
//
//lint:coldpath runs only for traced spans at StartSpan; the untraced hot path never reaches the slow log and traced queries already price span allocation
func (l *SlowTraceLog) track(trace TraceID, id SpanID) {
	if trace == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	pt := l.pendingLocked(trace)
	pt.ids[id] = true
	pt.started++
}

// pendingLocked returns the trace's pending entry, creating it (and
// evicting the oldest if the table is full) when absent.
func (l *SlowTraceLog) pendingLocked(trace TraceID) *pendingTrace {
	pt := l.pending[trace]
	if pt == nil {
		l.evictOldestLocked()
		pt = &pendingTrace{ids: make(map[SpanID]bool)}
		l.pending[trace] = pt
		l.order = append(l.order, trace)
	}
	return pt
}

// offer receives one finished span from the tracer. warn reports
// whether the span recorded any warn-level event (End passes it so the
// log does not rescan the event list).
//
//lint:coldpath runs only for traced spans at End; the untraced hot path never reaches the slow log and traced queries already price span allocation
func (l *SlowTraceLog) offer(s Span, warn bool) {
	if s.Trace == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	pt := l.pendingLocked(s.Trace)
	if !pt.ids[s.ID] {
		// Started before the log was attached: adopt it now.
		pt.ids[s.ID] = true
		pt.started++
	}
	pt.ended++
	if len(pt.spans) < spansPerTraceLimit {
		pt.spans = append(pt.spans, s)
	} else {
		pt.dropped++
	}
	if s.Duration > pt.dur {
		pt.dur = s.Duration
	}
	pt.probes += s.Probes
	if warn && !pt.hot {
		pt.hot = true
		pt.reason = "event:" + firstWarnName(s.Events)
	}
	if l.threshold > 0 && s.Duration >= l.threshold && (!pt.hot || pt.reason == "") {
		pt.hot = true
		pt.reason = "threshold"
	}
	// Every locally-started span has ended: the trace's local tree is
	// complete and the keep/discard decision is due. A later span of
	// the same trace (a sequential batch RPC under a remote parent)
	// opens a fresh pending entry and merges into the same ring slot at
	// retention.
	if pt.ended >= pt.started {
		l.finalizeLocked(s.Trace, pt)
	}
}

// evictOldestLocked frees one pending slot when the table is full. The
// oldest pending trace is the least likely to still complete.
func (l *SlowTraceLog) evictOldestLocked() {
	for len(l.pending) >= pendingTraceLimit && len(l.order) > 0 {
		id := l.order[0]
		l.order = l.order[1:]
		if pt := l.pending[id]; pt != nil {
			delete(l.pending, id)
			l.examined.Inc()
			if pt.hot {
				// Evicted but already marked hot: retain what was seen
				// rather than lose a known outlier.
				l.retainLocked(id, pt)
			} else {
				l.evicted.Inc()
			}
		}
	}
}

// finalizeLocked decides a completed trace: retain if hot, drop if not.
func (l *SlowTraceLog) finalizeLocked(id TraceID, pt *pendingTrace) {
	delete(l.pending, id)
	for i, oid := range l.order {
		if oid == id {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	l.examined.Inc()
	if pt.hot {
		l.retainLocked(id, pt)
	}
}

// retainLocked copies a hot trace into the ring, merging into an
// existing capture of the same trace (a trace with several local
// top-level spans — e.g. two batch RPCs — finalizes more than once).
// A merged entry's Spans stay capped at spansPerTraceLimit with the
// overflow counted, so a client reusing one trace context across many
// queries cannot grow a ring entry without bound.
func (l *SlowTraceLog) retainLocked(id TraceID, pt *pendingTrace) {
	for i := range l.ring {
		if l.ring[i].Trace == id {
			e := &l.ring[i]
			for _, s := range pt.spans {
				if len(e.Spans) < spansPerTraceLimit {
					e.Spans = append(e.Spans, s)
				} else {
					e.SpansDropped++
				}
			}
			e.SpansDropped += pt.dropped
			if pt.dur > e.Duration {
				e.Duration = pt.dur
			}
			e.Probes += pt.probes
			return
		}
	}
	st := SlowTrace{
		Trace:        id,
		CapturedAt:   time.Now(),
		Duration:     pt.dur,
		Reason:       pt.reason,
		Probes:       pt.probes,
		Spans:        pt.spans,
		SpansDropped: pt.dropped,
	}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, st)
	} else {
		l.ring[l.next] = st
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.captured.Inc()
}

// Captured returns the retained slow traces, newest first.
func (l *SlowTraceLog) Captured() []SlowTrace {
	l.mu.Lock()
	out := make([]SlowTrace, len(l.ring))
	// Unroll the ring so out is oldest→newest, then reverse.
	n := len(l.ring)
	start := 0
	if n == cap(l.ring) {
		start = l.next
	}
	for i := 0; i < n; i++ {
		out[n-1-i] = l.ring[(start+i)%n]
	}
	l.mu.Unlock()
	return out
}

// Trace returns the retained capture for one trace, if any.
func (l *SlowTraceLog) Trace(id TraceID) (SlowTrace, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.ring {
		if l.ring[i].Trace == id {
			return l.ring[i], true
		}
	}
	return SlowTrace{}, false
}

// Len returns the number of retained slow traces.
func (l *SlowTraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// WriteJSON writes the retained slow traces (newest first) as a JSON
// document — the /debug/slow payload.
func (l *SlowTraceLog) WriteJSON(w io.Writer) error {
	type payload struct {
		ThresholdNS int64       `json:"threshold_ns"`
		Captured    int64       `json:"captured_total"`
		Evicted     int64       `json:"evicted_total"`
		Examined    int64       `json:"examined_total"`
		Traces      []SlowTrace `json:"traces"`
	}
	p := payload{
		ThresholdNS: int64(l.threshold),
		Captured:    l.captured.Value(),
		Evicted:     l.evicted.Value(),
		Examined:    l.examined.Value(),
		Traces:      l.Captured(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// RegisterMetrics registers the log's own counters under prefix
// (default "lcakp_slowtrace").
func (l *SlowTraceLog) RegisterMetrics(reg *Registry, prefix string) error {
	if prefix == "" {
		prefix = "lcakp_slowtrace"
	}
	type m struct {
		name, help string
		c          *Counter
	}
	for _, x := range []m{
		{prefix + "_captured_total", "Slow traces force-retained by the tail capture ring.", &l.captured},
		{prefix + "_evicted_total", "Pending traces evicted before their top-level span ended.", &l.evicted},
		{prefix + "_examined_total", "Traces examined by the tail capture decision.", &l.examined},
	} {
		if err := reg.Register(x.name, x.help, x.c); err != nil {
			return fmt.Errorf("obs: slow log metrics: %w", err)
		}
	}
	return nil
}

// firstWarnName returns the name of the first warn-level event.
func firstWarnName(events []Event) string {
	for _, e := range events {
		if e.Level == LevelWarn {
			return e.Name
		}
	}
	return "unknown"
}
