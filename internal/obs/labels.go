package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// DefaultLabelLimit bounds a vec's distinct label values when the
// caller passes limit <= 0. Label cardinality is the classic metrics
// foot-gun: a label fed from an unbounded domain (tenant IDs, item
// indices) grows the scrape without bound. Every vec therefore folds
// values beyond its limit into a single overflow child.
const DefaultLabelLimit = 64

// OverflowLabelValue is the label value under which out-of-budget
// children are aggregated.
const OverflowLabelValue = "_overflow"

// vec is the shared machinery of the labeled metric families: one
// label dimension, a bounded set of child metrics keyed by label
// value, and a deterministic sorted exposition. It backs CounterVec,
// GaugeVec, and HistogramVec; the typed wrappers exist so With can
// return concrete metric types.
type vec struct {
	label string
	limit int

	mu       sync.RWMutex
	children map[string]Metric
	overflow Metric // lazily created shared child for values beyond limit
}

func newVec(label string, limit int) *vec {
	if limit <= 0 {
		limit = DefaultLabelLimit
	}
	return &vec{label: label, limit: limit, children: make(map[string]Metric)}
}

// child returns the metric for value, creating it with mk when absent.
// Values beyond the cardinality limit share the overflow child.
func (v *vec) child(value string, mk func() Metric) Metric {
	v.mu.RLock()
	m, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok := v.children[value]; ok {
		return m
	}
	if len(v.children) >= v.limit {
		if v.overflow == nil {
			v.overflow = mk()
		}
		return v.overflow
	}
	m = mk()
	v.children[value] = m
	return m
}

// attach installs m under value, replacing any existing child — the
// re-registration path for read-through children whose backing object
// is recreated (a tenant re-derived after eviction). Beyond the limit
// the attach is dropped and an error returned; the bound holds.
func (v *vec) attach(value string, m Metric) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.children[value]; !ok && len(v.children) >= v.limit {
		return fmt.Errorf("obs: label %s=%q beyond cardinality limit %d", v.label, value, v.limit)
	}
	v.children[value] = m
	return nil
}

// Forget drops the child registered under value (no-op when absent).
func (v *vec) Forget(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, value)
}

// Len returns the number of distinct resident label values (the
// overflow child excluded).
func (v *vec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

// snapshot returns the children sorted by label value, the overflow
// child appended last when present.
func (v *vec) snapshot() (values []string, metrics []Metric) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	values = make([]string, 0, len(v.children)+1)
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	metrics = make([]Metric, 0, len(values)+1)
	for _, val := range values {
		metrics = append(metrics, v.children[val])
	}
	if v.overflow != nil {
		values = append(values, OverflowLabelValue)
		metrics = append(metrics, v.overflow)
	}
	return values, metrics
}

// escapeLabelValue escapes a label value per the Prometheus text
// format (backslash, double quote, newline).
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labeledName renders name{label="value"} with the value escaped.
func labeledName(name, label, value string) string {
	return fmt.Sprintf("%s{%s=\"%s\"}", name, label, escapeLabelValue(value))
}

// CounterVec is a family of counters partitioned by one label — the
// per-tenant counter surface. The zero value is not usable; build with
// NewCounterVec.
type CounterVec struct {
	*vec
}

// NewCounterVec builds a counter family over the given label name;
// limit bounds distinct label values (<= 0 selects DefaultLabelLimit).
func NewCounterVec(label string, limit int) *CounterVec {
	return &CounterVec{vec: newVec(label, limit)}
}

// With returns the counter for the given label value, creating it on
// first use. Beyond the cardinality limit every new value shares one
// overflow counter, so the family's scrape size is bounded by
// construction.
func (v *CounterVec) With(value string) *Counter {
	m := v.child(value, func() Metric { return NewCounter() })
	c, ok := m.(*Counter)
	if !ok {
		// A CounterFunc was attached under this value; callers needing a
		// writable counter must not reuse its label.
		panic(fmt.Sprintf("obs: label %s=%q holds an attached read-through child", v.label, value))
	}
	return c
}

// AttachFunc installs a read-through child under value (replacing any
// existing child) — the bridge for pre-existing tallies such as a
// tenant engine's totals. It fails beyond the cardinality limit.
func (v *CounterVec) AttachFunc(value string, fn CounterFunc) error {
	return v.attach(value, fn)
}

func (v *CounterVec) kind() string { return "counter" }

func (v *CounterVec) expose(w io.Writer, name string) error {
	values, metrics := v.snapshot()
	for i, val := range values {
		if err := metrics[i].expose(w, labeledName(name, v.label, val)); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a family of gauges partitioned by one label — the
// breaker-state-by-replica surface. Build with NewGaugeVec.
type GaugeVec struct {
	*vec
}

// NewGaugeVec builds a gauge family over the given label name; limit
// bounds distinct label values (<= 0 selects DefaultLabelLimit).
func NewGaugeVec(label string, limit int) *GaugeVec {
	return &GaugeVec{vec: newVec(label, limit)}
}

// With returns the gauge for the given label value, creating it on
// first use (overflow beyond the limit, as for CounterVec).
func (v *GaugeVec) With(value string) *Gauge {
	m := v.child(value, func() Metric { return NewGauge() })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: label %s=%q holds an attached read-through child", v.label, value))
	}
	return g
}

// AttachFunc installs a read-through child under value (replacing any
// existing child). It fails beyond the cardinality limit.
func (v *GaugeVec) AttachFunc(value string, fn GaugeFunc) error {
	return v.attach(value, fn)
}

func (v *GaugeVec) kind() string { return "gauge" }

func (v *GaugeVec) expose(w io.Writer, name string) error {
	values, metrics := v.snapshot()
	for i, val := range values {
		if err := metrics[i].expose(w, labeledName(name, v.label, val)); err != nil {
			return err
		}
	}
	return nil
}

// HistogramVec is a family of latency histograms partitioned by one
// label. Build with NewHistogramVec.
type HistogramVec struct {
	label string
	limit int

	mu       sync.RWMutex
	children map[string]*Histogram
	overflow *Histogram
}

// NewHistogramVec builds a histogram family over the given label name;
// limit bounds distinct label values (<= 0 selects DefaultLabelLimit).
func NewHistogramVec(label string, limit int) *HistogramVec {
	if limit <= 0 {
		limit = DefaultLabelLimit
	}
	return &HistogramVec{label: label, limit: limit, children: make(map[string]*Histogram)}
}

// With returns the histogram for the given label value, creating it on
// first use (overflow beyond the limit).
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	if len(v.children) >= v.limit {
		if v.overflow == nil {
			v.overflow = NewHistogram()
		}
		return v.overflow
	}
	h = NewHistogram()
	v.children[value] = h
	return h
}

// Forget drops the child registered under value (no-op when absent).
func (v *HistogramVec) Forget(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, value)
}

// Len returns the number of distinct resident label values.
func (v *HistogramVec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.children)
}

func (v *HistogramVec) kind() string { return "summary" }

// expose writes each child as a Prometheus summary whose sample lines
// carry both the vec label and the quantile label, followed by one
// grouped block of <name>_max companion gauges.
func (v *HistogramVec) expose(w io.Writer, name string) error {
	v.mu.RLock()
	values := make([]string, 0, len(v.children)+1)
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	children := make([]*Histogram, 0, len(values)+1)
	for _, val := range values {
		children = append(children, v.children[val])
	}
	if v.overflow != nil {
		values = append(values, OverflowLabelValue)
		children = append(children, v.overflow)
	}
	v.mu.RUnlock()

	snaps := make([]Snapshot, len(children))
	for i, h := range children {
		snaps[i] = h.Snapshot()
	}
	for i, val := range values {
		s := snaps[i]
		esc := escapeLabelValue(val)
		for _, qv := range [...]struct {
			q string
			d float64
		}{{"0.5", s.P50.Seconds()}, {"0.95", s.P95.Seconds()}, {"0.99", s.P99.Seconds()}} {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\",quantile=%q} %s\n", name, v.label, esc, qv.q, formatFloat(qv.d)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %s\n", name, v.label, esc, formatFloat(s.Sum.Seconds())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", name, v.label, esc, s.Count); err != nil {
			return err
		}
	}
	if len(values) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE %s_max gauge\n", name); err != nil {
			return err
		}
		for i, val := range values {
			if _, err := fmt.Fprintf(w, "%s_max{%s=\"%s\"} %s\n", name, v.label, escapeLabelValue(val), formatFloat(snaps[i].Max.Seconds())); err != nil {
				return err
			}
		}
	}
	return nil
}
