package obs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- span events and the probe ledger ---

func TestSpanEventsRecordProbesAndLevels(t *testing.T) {
	tr := NewTracer(8)
	ctx, span := tr.StartSpan(context.Background(), "q")
	span.AddProbes(2)
	span.Event("first", String("k", "v"))
	AddProbes(ctx, 3)
	AddWarnEvent(ctx, "second", Int("n", 7))
	span.End()

	spans := tr.Recorder().Spans()
	if len(spans) != 1 {
		t.Fatalf("want 1 recorded span, got %d", len(spans))
	}
	s := spans[0]
	if s.Probes != 5 {
		t.Errorf("span probes = %d, want 5", s.Probes)
	}
	if len(s.Events) != 2 {
		t.Fatalf("want 2 events, got %d", len(s.Events))
	}
	if s.Events[0].Name != "first" || s.Events[0].Level != LevelInfo || s.Events[0].Probes != 2 {
		t.Errorf("first event = %+v, want name=first level=info probes=2", s.Events[0])
	}
	if s.Events[1].Name != "second" || s.Events[1].Level != LevelWarn || s.Events[1].Probes != 5 {
		t.Errorf("second event = %+v, want name=second level=warn probes=5", s.Events[1])
	}
	if got := s.Events[1].Attrs; len(got) != 1 || got[0].Key != "n" || got[0].Value != "7" {
		t.Errorf("second event attrs = %+v, want [n=7]", got)
	}
}

func TestSpanEventsBoundedWithDropCount(t *testing.T) {
	tr := NewTracer(4)
	_, span := tr.StartSpan(context.Background(), "noisy")
	for i := 0; i < MaxSpanEvents+5; i++ {
		span.Event("e")
	}
	span.End()
	s := tr.Recorder().Spans()[0]
	if len(s.Events) != MaxSpanEvents {
		t.Errorf("events retained = %d, want %d", len(s.Events), MaxSpanEvents)
	}
	if s.EventsDropped != 5 {
		t.Errorf("EventsDropped = %d, want 5", s.EventsDropped)
	}
}

func TestSpanEventAfterEndIsDropped(t *testing.T) {
	tr := NewTracer(4)
	_, span := tr.StartSpan(context.Background(), "late")
	span.Event("before")
	span.End()
	span.Event("after") // must not grow the recorded copy
	s := tr.Recorder().Spans()[0]
	if len(s.Events) != 1 || s.Events[0].Name != "before" {
		t.Errorf("recorded events = %+v, want only [before]", s.Events)
	}
}

func TestEventHelpersNoopWhenUntraced(t *testing.T) {
	// Must not panic and must not allocate a trace out of thin air.
	ctx := context.Background()
	AddEvent(ctx, "nothing")
	AddWarnEvent(ctx, "nothing")
	AddProbes(ctx, 1)
	var nilSpan *Span
	nilSpan.Event("nothing")
	nilSpan.AddProbes(1)
	nilSpan.End()
	if id := TraceIDFromContext(ctx); id != 0 {
		t.Errorf("TraceIDFromContext(untraced) = %v, want 0", id)
	}
}

// --- tail-based slow-trace capture ---

// endWithDuration fabricates a finished span offered to a slow log.
func endWithDuration(ctx context.Context, tr *Tracer, name string, d time.Duration, warn bool) (TraceID, context.Context) {
	sctx, span := tr.StartSpan(ctx, name)
	if warn {
		span.WarnEvent("trouble")
	}
	// Backdate the start so End computes the duration we want without
	// sleeping.
	span.Start = span.Start.Add(-d)
	id := span.Trace
	span.End()
	return id, sctx
}

func TestSlowLogCapturesThresholdCrossers(t *testing.T) {
	tr := NewTracer(16)
	slow := NewSlowTraceLog(8, 50*time.Millisecond)
	tr.SetSlowLog(slow)

	fastID, _ := endWithDuration(context.Background(), tr, "fast", time.Millisecond, false)
	slowID, _ := endWithDuration(context.Background(), tr, "slow", 80*time.Millisecond, false)

	if _, ok := slow.Trace(fastID); ok {
		t.Errorf("fast trace %v must not be captured", fastID)
	}
	st, ok := slow.Trace(slowID)
	if !ok {
		t.Fatalf("slow trace %v not captured", slowID)
	}
	if st.Reason != "threshold" {
		t.Errorf("capture reason = %q, want threshold", st.Reason)
	}
	if st.Duration < 50*time.Millisecond {
		t.Errorf("captured duration = %v, want >= threshold", st.Duration)
	}
}

func TestSlowLogCapturesWarnEventTraces(t *testing.T) {
	tr := NewTracer(16)
	slow := NewSlowTraceLog(8, 0) // no latency trigger: events only
	tr.SetSlowLog(slow)

	warnID, _ := endWithDuration(context.Background(), tr, "warned", time.Millisecond, true)
	quietID, _ := endWithDuration(context.Background(), tr, "quiet", time.Millisecond, false)

	st, ok := slow.Trace(warnID)
	if !ok {
		t.Fatalf("warn-event trace %v not captured", warnID)
	}
	if st.Reason != "event:trouble" {
		t.Errorf("capture reason = %q, want event:trouble", st.Reason)
	}
	if _, ok := slow.Trace(quietID); ok {
		t.Errorf("quiet trace %v must not be captured", quietID)
	}
}

func TestSlowLogRetainsWholeSpanTree(t *testing.T) {
	tr := NewTracer(16)
	slow := NewSlowTraceLog(8, 0)
	tr.SetSlowLog(slow)

	// Root with two children; only one child warns, but the whole local
	// tree must be retained, children ending before the root.
	rootCtx, root := tr.StartSpan(context.Background(), "gateway.query")
	_, c1 := tr.StartSpan(rootCtx, "rpc.1")
	c1.End()
	_, c2 := tr.StartSpan(rootCtx, "rpc.2")
	c2.WarnEvent("gateway.failover", String("to", "b"))
	c2.End()
	root.AddProbes(2)
	root.End()

	st, ok := slow.Trace(root.Trace)
	if !ok {
		t.Fatalf("trace %v not captured", root.Trace)
	}
	if len(st.Spans) != 3 {
		t.Fatalf("captured %d spans, want the whole tree of 3: %+v", len(st.Spans), st.Spans)
	}
	if st.Probes != 2 {
		t.Errorf("captured probes = %d, want 2", st.Probes)
	}
	names := map[string]bool{}
	for _, s := range st.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"gateway.query", "rpc.1", "rpc.2"} {
		if !names[want] {
			t.Errorf("captured tree missing span %q", want)
		}
	}
}

func TestSlowLogRingBoundAndNewestFirst(t *testing.T) {
	tr := NewTracer(64)
	slow := NewSlowTraceLog(2, 0)
	tr.SetSlowLog(slow)
	var ids []TraceID
	for i := 0; i < 5; i++ {
		id, _ := endWithDuration(context.Background(), tr, fmt.Sprintf("w%d", i), time.Millisecond, true)
		ids = append(ids, id)
	}
	got := slow.Captured()
	if len(got) != 2 {
		t.Fatalf("retained %d traces, want ring bound 2", len(got))
	}
	if got[0].Trace != ids[4] || got[1].Trace != ids[3] {
		t.Errorf("retained traces %v,%v; want newest-first %v,%v", got[0].Trace, got[1].Trace, ids[4], ids[3])
	}
}

func TestSlowLogWriteJSONRoundTrips(t *testing.T) {
	tr := NewTracer(16)
	slow := NewSlowTraceLog(8, 0)
	tr.SetSlowLog(slow)
	id, _ := endWithDuration(context.Background(), tr, "warned", time.Millisecond, true)

	var buf bytes.Buffer
	if err := slow.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"` + id.String() + `"`, // hex-quoted trace ID
		`"reason": "event:trouble"`,
		`"captured_total": 1`,
		`"name": "trouble"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteJSON output missing %q:\n%s", want, out)
		}
	}
}

// TestSlowLogMergedTraceStaysBounded reuses one trace context across
// many warn-carrying queries: each query finalizes separately and
// merges into the same ring entry, whose span list must stay capped at
// spansPerTraceLimit with the overflow counted — a chatty client must
// not defeat the log's bounded-memory design.
func TestSlowLogMergedTraceStaysBounded(t *testing.T) {
	tr := NewTracer(16)
	slow := NewSlowTraceLog(8, 0)
	tr.SetSlowLog(slow)

	const extra = 10
	id, ctx := endWithDuration(context.Background(), tr, "q0", time.Millisecond, true)
	for i := 1; i < spansPerTraceLimit+extra; i++ {
		endWithDuration(ctx, tr, fmt.Sprintf("q%d", i), time.Millisecond, true)
	}
	st, ok := slow.Trace(id)
	if !ok {
		t.Fatalf("trace %v not captured", id)
	}
	if len(st.Spans) != spansPerTraceLimit {
		t.Errorf("merged entry holds %d spans, want cap %d", len(st.Spans), spansPerTraceLimit)
	}
	if st.SpansDropped != extra {
		t.Errorf("SpansDropped = %d, want %d", st.SpansDropped, extra)
	}
}

// --- histogram exemplars ---

func TestObserveExemplarLinksTraceToBucket(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(3*time.Millisecond, TraceID(0xabc), "t1")
	ex, ok := h.ExemplarNear(0.99)
	if !ok {
		t.Fatal("no exemplar near p99 after a traced observation")
	}
	if ex.Trace != TraceID(0xabc) || ex.Tenant != "t1" || ex.Value != 3*time.Millisecond {
		t.Errorf("exemplar = %+v, want trace=abc tenant=t1 value=3ms", ex)
	}
	// Untraced observations leave no exemplar.
	h2 := NewHistogram()
	h2.ObserveExemplar(time.Millisecond, 0, "t1")
	if _, ok := h2.ExemplarNear(0.5); ok {
		t.Error("untraced ObserveExemplar must not store an exemplar")
	}
}

func TestExemplarInExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lcakp_forensics_latency_seconds", "latency")
	h.ObserveExemplar(2*time.Millisecond, TraceID(0xdeadbeef), "3:5")

	// The scrapeable exposition must stay strictly plain 0.0.4: no
	// exposition format permits exemplars on summary quantiles, and a
	// single annotation would fail a whole Prometheus scrape.
	var plain bytes.Buffer
	if err := reg.WritePrometheus(&plain); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if strings.Contains(plain.String(), " # {") {
		t.Errorf("WritePrometheus output carries an exemplar annotation — /metrics would be unscrapable:\n%s", plain.String())
	}

	// The extended exposition (served on /debug/exemplars, consumed by
	// the push path) carries the annotation and round-trips the parser.
	var buf bytes.Buffer
	if err := reg.WriteExemplarExposition(&buf); err != nil {
		t.Fatalf("WriteExemplarExposition: %v", err)
	}
	out := buf.String()
	want := `# {trace_id="00000000deadbeef",tenant="3:5"} 0.002`
	if !strings.Contains(out, want) {
		t.Errorf("extended exposition missing exemplar annotation %q:\n%s", want, out)
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition with exemplars failed to parse: %v", err)
	}
}

// TestHistogramExemplarSwapRace hammers ObserveExemplar from many
// goroutines (run under -race in CI): the atomic pointer swap must
// never tear, and every stored exemplar must be internally consistent —
// a real (trace, value) pair some goroutine wrote, filed in the bucket
// its value belongs to.
func TestHistogramExemplarSwapRace(t *testing.T) {
	const workers = 8
	const perWorker = 5_000
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := time.Duration((i*977+w)%1_000_000 + 1)
				// Trace encodes the value so readers can check pairing.
				h.ObserveExemplar(d, TraceID(uint64(d)), "t")
			}
		}(w)
	}
	// Concurrent readers exercise the load side of the swap.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				h.ExemplarNear(0.99)
			}
		}
	}()
	wg.Wait()
	close(done)

	found := 0
	for i := range h.exemplars {
		ex := h.exemplars[i].Load()
		if ex == nil {
			continue
		}
		found++
		if uint64(ex.Trace) != uint64(ex.Value) {
			t.Fatalf("torn exemplar: trace %d does not match value %d", ex.Trace, ex.Value)
		}
		if bucketIndex(int64(ex.Value)) != i {
			t.Fatalf("exemplar with value %d filed in bucket %d, want %d", ex.Value, i, bucketIndex(int64(ex.Value)))
		}
	}
	if found == 0 {
		t.Fatal("no exemplars stored at all")
	}
}

// --- label cardinality under concurrent churn ---

// TestVecCardinalityChurnConcurrent churns far more tenants than the
// limit through counter and histogram vecs from many goroutines while
// a reader continuously snapshots the exposition (run under -race in
// CI). The bound must hold at every instant and the overflow child must
// absorb the excess.
func TestVecCardinalityChurnConcurrent(t *testing.T) {
	const limit = 8
	const workers = 6
	const perWorker = 2_000
	cv := NewCounterVec("tenant", limit)
	hv := NewHistogramVec("tenant", limit)
	reg := NewRegistry()
	reg.MustRegister("lcakp_churn_total", "churning counter vec", cv)
	reg.MustRegister("lcakp_churn_latency_seconds", "churning histogram vec", hv)

	var wg sync.WaitGroup
	var stop atomic.Bool
	readerDone := make(chan struct{})
	// Reader: exposition must stay well-formed mid-churn.
	go func() {
		defer close(readerDone)
		for !stop.Load() {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus during churn: %v", err)
				return
			}
			if _, err := ParseExposition(&buf); err != nil {
				t.Errorf("exposition invalid during churn: %v", err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tenant := fmt.Sprintf("tenant-%d", (i*7+w)%64)
				cv.With(tenant).Inc()
				hv.With(tenant).Observe(time.Duration(i + 1))
				if i%3 == 0 {
					// Churn: evict this tenant so later arrivals re-derive
					// it, racing the limit check.
					cv.Forget(tenant)
					hv.Forget(tenant)
				}
				if n := cv.Len(); n > limit {
					t.Errorf("CounterVec Len = %d, above limit %d", n, limit)
					return
				}
				if n := hv.Len(); n > limit {
					t.Errorf("HistogramVec Len = %d, above limit %d", n, limit)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	<-readerDone

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `tenant="`+OverflowLabelValue+`"`) {
		t.Errorf("exposition after churn past the limit is missing the %s child:\n%s", OverflowLabelValue, out)
	}
	if cv.Len() > limit || hv.Len() > limit {
		t.Errorf("final Len counter=%d hist=%d above limit %d", cv.Len(), hv.Len(), limit)
	}
}

// --- /metrics golden: valid text format, byte-stable with no traffic ---

func TestMetricsExpositionValidAndByteStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lcakp_golden_queries_total", "queries served").Add(42)
	reg.Gauge("lcakp_golden_residency", "resident tenants").Set(3)
	h := reg.Histogram("lcakp_golden_latency_seconds", "query latency")
	h.ObserveExemplar(5*time.Millisecond, TraceID(0x42), "3:5")
	h.Observe(time.Millisecond)
	cv := NewCounterVec("tenant", 4)
	cv.With("3:5").Add(7)
	cv.With(`we"ird\`).Inc() // escaping must round-trip the parser
	reg.MustRegister("lcakp_golden_tenant_queries_total", "per-tenant queries", cv)
	hv := NewHistogramVec("tenant", 4)
	hv.With("3:5").Observe(2 * time.Millisecond)
	reg.MustRegister("lcakp_golden_tenant_latency_seconds", "per-tenant latency", hv)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	scrape := func() string {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read /metrics: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: %s", resp.Status)
		}
		return string(body)
	}

	first := scrape()
	families, err := ParseExposition(strings.NewReader(first))
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v\n%s", err, first)
	}
	if len(families) == 0 {
		t.Fatal("no metric families parsed")
	}
	// Valid for a real scraper means plain 0.0.4: the classic text
	// parser allows only a timestamp after a sample value, so any
	// exemplar annotation would fail the whole scrape.
	if strings.Contains(first, " # {") {
		t.Errorf("/metrics carries an exemplar annotation — not valid Prometheus text:\n%s", first)
	}
	byName := map[string]Family{}
	for _, f := range families {
		byName[f.Name] = f
	}
	if f, ok := byName["lcakp_golden_queries_total"]; !ok || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Errorf("counter family wrong: %+v", f)
	}
	if f, ok := byName["lcakp_golden_latency_seconds"]; !ok || f.Type != "summary" {
		t.Errorf("summary family wrong: %+v", f)
	}

	// The trace link lives on the extended exposition instead.
	var annotated bytes.Buffer
	if err := reg.WriteExemplarExposition(&annotated); err != nil {
		t.Fatalf("WriteExemplarExposition: %v", err)
	}
	exFamilies, err := ParseExposition(bytes.NewReader(annotated.Bytes()))
	if err != nil {
		t.Fatalf("exemplar exposition does not parse: %v\n%s", err, annotated.String())
	}
	sawExemplar := false
	for _, f := range exFamilies {
		if f.Name != "lcakp_golden_latency_seconds" {
			continue
		}
		for _, s := range f.Samples {
			if s.Exemplar != nil && s.Exemplar.Label("trace_id") == TraceID(0x42).String() {
				sawExemplar = true
			}
		}
	}
	if !sawExemplar {
		t.Errorf("exemplar exposition carries no trace_id exemplar for the traced observation:\n%s", annotated.String())
	}

	// No traffic between scrapes: the exposition must be byte-identical.
	second := scrape()
	if first != second {
		t.Errorf("/metrics not byte-stable across idle scrapes:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// --- /debug/traces filtering ---

func TestDebugTracesFilterAndLimit(t *testing.T) {
	tr := NewTracer(16)
	var want TraceID
	for i := 0; i < 3; i++ {
		_, span := tr.StartSpan(context.Background(), fmt.Sprintf("q%d", i))
		span.Event("mark", Int("i", int64(i)))
		want = span.Trace
		span.End()
	}
	dbg, err := NewDebugServer("127.0.0.1:0", nil, tr.Recorder(), nil)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	defer dbg.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/traces?trace=" + want.String())
	if code != http.StatusOK {
		t.Fatalf("?trace= returned %d: %s", code, body)
	}
	if !strings.Contains(body, "name=q2") || strings.Contains(body, "name=q0") {
		t.Errorf("?trace= must show only the requested trace:\n%s", body)
	}
	if !strings.Contains(body, "event=mark") {
		t.Errorf("?trace= output missing span events:\n%s", body)
	}

	code, body = get("/debug/traces?limit=2")
	if code != http.StatusOK {
		t.Fatalf("?limit= returned %d: %s", code, body)
	}
	if got := strings.Count(body, "trace="); got != 2 {
		t.Errorf("?limit=2 shows %d span lines, want 2:\n%s", got, body)
	}

	if code, _ := get("/debug/traces?trace=zzzz"); code != http.StatusBadRequest {
		t.Errorf("bad trace id returned %d, want 400", code)
	}
}

// --- pusher delivery, bounded queue, and backoff ---

func TestPusherQueueBoundsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	var received atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		received.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	reg := NewRegistry()
	c := reg.Counter("lcakp_pushertest_total", "test counter")
	p, err := NewPusher(PusherOptions{
		Endpoint:   srv.URL,
		Registry:   reg,
		QueueLimit: 2,
	})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}

	// Collector down: every flush fails, the queue stays bounded.
	for i := 0; i < 5; i++ {
		c.Inc() // make each payload non-empty
		if err := p.Flush(context.Background()); err == nil {
			t.Fatal("Flush against a down collector must error")
		}
	}
	p.mu.Lock()
	queued := len(p.queue)
	p.mu.Unlock()
	if queued > 2 {
		t.Errorf("queue holds %d payloads, want <= QueueLimit 2", queued)
	}
	if p.dropped.Value() == 0 {
		t.Error("dropped counter must count payloads pushed off the bounded queue")
	}

	// Collector back: the retained queue drains in order.
	healthy.Store(true)
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	if received.Load() == 0 {
		t.Error("recovered collector received nothing")
	}
	p.mu.Lock()
	queued = len(p.queue)
	p.mu.Unlock()
	if queued != 0 {
		t.Errorf("queue not drained after recovery: %d left", queued)
	}
	if p.pushes.Value() == 0 {
		t.Error("pushes counter must count delivered payloads")
	}
}

// TestPusherFlushesSerialize fires concurrent Flush calls (the shape
// of Close racing the loop's in-flight flush) against a slow
// collector: flushes must serialize, so no queue entry is ever
// double-POSTed or trimmed while undelivered.
func TestPusherFlushesSerialize(t *testing.T) {
	var inFlight, maxInFlight atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		inFlight.Add(-1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	reg := NewRegistry()
	c := reg.Counter("lcakp_pusherserial_total", "test counter")
	p, err := NewPusher(PusherOptions{Endpoint: srv.URL, Registry: reg})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}

	const flushers = 4
	var wg sync.WaitGroup
	for i := 0; i < flushers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Inc() // make each payload non-empty
			if err := p.Flush(context.Background()); err != nil {
				t.Errorf("Flush: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := maxInFlight.Load(); got != 1 {
		t.Errorf("max concurrent POSTs = %d, want 1 (flushes must serialize)", got)
	}
	if got := p.pushes.Value(); got != flushers {
		t.Errorf("pushes = %d, want exactly %d (each enqueued payload delivered once)", got, flushers)
	}
	p.mu.Lock()
	queued := len(p.queue)
	p.mu.Unlock()
	if queued != 0 {
		t.Errorf("queue holds %d payloads after all flushes delivered, want 0", queued)
	}
}
