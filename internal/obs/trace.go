package obs

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end query across processes; 0 means
// "no trace". A trace is minted where a query enters the system (the
// gateway, or a client) and carried through every layer it crosses —
// context.Context in-process, a protocol frame header across the wire.
type TraceID uint64

// String renders the ID in the fixed-width hex form used by the
// -trace dumps, so IDs can be grepped across process logs.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// SpanID identifies one span within a trace; 0 means "no span".
type SpanID uint64

// String renders the ID in fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// SpanContext is the propagated part of a span: enough for a callee —
// possibly in another process — to attach child spans to the right
// trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether sc carries a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// spanCtxKey locates the active SpanContext in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc as the active span — what a
// server installs after decoding a traced frame, and what StartSpan
// installs for its callees.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc) //lint:alloc span propagation is the opt-in price of tracing; untraced queries never reach it
}

// SpanFromContext returns the active span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Span is one recorded unit of work within a trace.
type Span struct {
	// Trace is the owning trace; ID this span; Parent the span this one
	// was started under (0 for a root span).
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	// Name says what the span measures ("gateway.query",
	// "engine.query", ...).
	Name string
	// Start and Duration bound the work. Duration is 0 until End.
	Start    time.Time
	Duration time.Duration

	tracer *Tracer
	// ended is driven by the atomic package functions rather than an
	// atomic.Bool so finished Span values stay freely copyable (the
	// recorder ring and its readers copy them by value).
	ended uint32
}

// End stamps the span's duration and records it into the tracer's ring
// buffer. End is idempotent; only the first call records.
func (s *Span) End() {
	if s.tracer == nil || atomic.SwapUint32(&s.ended, 1) != 0 {
		return
	}
	s.Duration = time.Since(s.Start)
	s.tracer.rec.record(Span{
		Trace:    s.Trace,
		ID:       s.ID,
		Parent:   s.Parent,
		Name:     s.Name,
		Start:    s.Start,
		Duration: s.Duration,
	})
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// tracerSeq distinguishes tracers within one process; combined with
// the PID it keeps concurrently minting processes on one host from
// colliding. Trace randomness is operational-only (it names query
// records, it never reaches an answer), so uniqueness — not
// unpredictability — is the requirement.
var tracerSeq atomic.Uint64

// Tracer mints spans and records finished ones into a fixed-size ring
// buffer. It is safe for concurrent use; recording is one mutex-guarded
// copy into the ring, no allocation after construction.
type Tracer struct {
	base uint64
	ctr  atomic.Uint64
	rec  *SpanRecorder
}

// NewTracer builds a tracer whose recorder retains the last capacity
// finished spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	return &Tracer{
		base: splitmix64(uint64(os.Getpid())<<32 ^ tracerSeq.Add(1)),
		rec:  NewSpanRecorder(capacity),
	}
}

// Recorder returns the tracer's span ring buffer.
func (t *Tracer) Recorder() *SpanRecorder { return t.rec }

// StartSpan begins a span named name. If ctx carries a SpanContext the
// new span joins that trace as a child (this is how a replica's engine
// span lands in the trace the gateway minted); otherwise a fresh trace
// is minted and this span is its root. The returned context carries
// the new span for callees; call End on the span when the work
// finishes.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{ //lint:alloc one span per traced query by design; the recorder ring retains it after End
		Name:   name,
		Start:  time.Now(),
		ID:     SpanID(t.newID()),
		tracer: t,
	}
	if parent, ok := SpanFromContext(ctx); ok {
		s.Trace = parent.Trace
		s.Parent = parent.Span
	} else {
		s.Trace = TraceID(t.newID())
	}
	return ContextWithSpan(ctx, s.Context()), s
}

// newID returns a nonzero process-locally unique ID.
func (t *Tracer) newID() uint64 {
	for {
		if id := splitmix64(t.base ^ t.ctr.Add(1)); id != 0 {
			return id
		}
	}
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap
// bijective scrambler turning sequential inputs into well-spread IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpanRecorder is a fixed-size ring buffer of finished spans: recent
// traces stay inspectable (-trace dumps, /debug/traces) at a hard
// memory bound, and old spans age out instead of growing the process.
type SpanRecorder struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewSpanRecorder builds a recorder retaining the last capacity spans
// (minimum 1).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRecorder{buf: make([]Span, 0, capacity)}
}

// record appends one finished span, overwriting the oldest when full.
func (r *SpanRecorder) record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Total returns the number of spans ever recorded (retained or aged
// out).
func (r *SpanRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Spans returns the retained spans sorted by start time.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	out := make([]Span, len(r.buf))
	copy(out, r.buf)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Trace returns the retained spans belonging to one trace, sorted by
// start time.
func (r *SpanRecorder) Trace(id TraceID) []Span {
	all := r.Spans()
	out := all[:0]
	for _, s := range all {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// WriteText dumps the retained spans one per line — the -trace dump
// format of lcaserver and lcagateway. Lines share a trace via the
// trace= column, greppable across the dumps of different processes.
func (r *SpanRecorder) WriteText(w io.Writer) error {
	spans := r.Spans()
	if _, err := fmt.Fprintf(w, "# %d spans retained (%d recorded)\n", len(spans), r.Total()); err != nil {
		return err
	}
	for _, s := range spans {
		if _, err := fmt.Fprintf(w, "trace=%s span=%s parent=%s name=%s start=%s dur=%s\n",
			s.Trace, s.ID, s.Parent, s.Name,
			s.Start.Format(time.RFC3339Nano), s.Duration); err != nil {
			return err
		}
	}
	return nil
}
