package obs

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end query across processes; 0 means
// "no trace". A trace is minted where a query enters the system (the
// gateway, or a client) and carried through every layer it crosses —
// context.Context in-process, a protocol frame header across the wire.
type TraceID uint64

// String renders the ID in the fixed-width hex form used by the
// -trace dumps, so IDs can be grepped across process logs.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// MarshalJSON renders the ID as its quoted hex form, matching the
// -trace dump and OTLP conventions so IDs grep identically across
// text dumps, /debug/slow JSON, and pushed payloads.
func (t TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON parses the quoted hex form.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	v, err := parseHexID(b)
	*t = TraceID(v)
	return err
}

// SpanID identifies one span within a trace; 0 means "no span".
type SpanID uint64

// String renders the ID in fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// MarshalJSON renders the ID as its quoted hex form.
func (s SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the quoted hex form.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	v, err := parseHexID(b)
	*s = SpanID(v)
	return err
}

// parseHexID decodes a JSON-quoted 64-bit hex ID.
func parseHexID(b []byte) (uint64, error) {
	s := strings.Trim(string(b), `"`)
	if s == "" || s == "null" {
		return 0, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

// ParseTraceID parses the fixed-width hex form (the String rendering)
// back into a TraceID — how /debug/traces?trace=<id> resolves an ID
// copied out of a metrics exemplar or a log line.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanContext is the propagated part of a span: enough for a callee —
// possibly in another process — to attach child spans to the right
// trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether sc carries a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// spanCtxKey locates the active SpanContext in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc as the active span — what a
// server installs after decoding a traced frame, and what StartSpan
// installs for its callees.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc) //lint:alloc span propagation is the opt-in price of tracing; untraced queries never reach it
}

// SpanFromContext returns the active span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// TraceIDFromContext returns the active trace ID, or 0 when ctx is
// untraced — the exemplar-site helper: passing the result straight to
// Histogram.ObserveExemplar makes untraced observations take the
// plain, allocation-free Observe path.
func TraceIDFromContext(ctx context.Context) TraceID {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc.Trace
}

// Attr is one key=value annotation on a span event. Values are
// pre-rendered strings: events live on decision paths (a hedge fired,
// a breaker opened), never on the cached hit path, so the formatting
// cost is paid only where a decision was actually made.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string-valued event attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued event attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// EventLevel classifies an event for the tail-capture policy.
type EventLevel uint8

const (
	// LevelInfo annotates normal decisions (a cache fill, a coalesced
	// flush, a tenant derivation).
	LevelInfo EventLevel = iota
	// LevelWarn marks tail-suspect decisions (hedge fired, retry,
	// failover, breaker opened, quota reject, budget exhausted, fault
	// injected). Any span carrying a warn event is force-retained by an
	// attached SlowTraceLog regardless of its latency.
	LevelWarn
)

// String renders the level for dumps and JSON.
func (l EventLevel) String() string {
	if l == LevelWarn {
		return "warn"
	}
	return "info"
}

// MarshalJSON renders the level as its string form.
func (l EventLevel) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// Event is one timestamped annotation on a span: which decision fired,
// when, and at what accumulated probe cost. The Probes field stamps
// the span's running probe count at the moment the event was recorded,
// so an ordered event list doubles as the query's Def 2.2 cost ledger:
// each decision is priced by the probes spent up to it.
type Event struct {
	Name   string     `json:"name"`
	Time   time.Time  `json:"time"`
	Level  EventLevel `json:"level"`
	Probes int64      `json:"probes"`
	Attrs  []Attr     `json:"attrs,omitempty"`
}

// MaxSpanEvents bounds the events retained per span. A span that tries
// to record more keeps its first MaxSpanEvents and counts the rest in
// EventsDropped — bounded memory per span, and the earliest decisions
// (which explain the later ones) are the ones kept.
const MaxSpanEvents = 16

// eventSink is the mutable side of a live span. It lives behind a
// pointer so finished Span values stay freely copyable by the recorder
// ring and its readers: the mutex and the accumulating slices never
// travel with the copies — End snapshots them into plain fields.
type eventSink struct {
	mu      sync.Mutex
	events  []Event
	dropped int32
	probes  atomic.Int64
	warn    bool
}

// Span is one recorded unit of work within a trace.
type Span struct {
	// Trace is the owning trace; ID this span; Parent the span this one
	// was started under (0 for a root span).
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"span"`
	Parent SpanID  `json:"parent"`
	// Name says what the span measures ("gateway.query",
	// "engine.query", ...).
	Name string `json:"name"`
	// Start and Duration bound the work. Duration is 0 until End.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Probes is the span's Def 2.2 probe count: oracle accesses and
	// replica RPCs charged to this span via AddProbes, frozen at End.
	Probes int64 `json:"probes,omitempty"`
	// Events are the span's recorded decision points in order;
	// EventsDropped counts events discarded past MaxSpanEvents.
	Events        []Event `json:"events,omitempty"`
	EventsDropped int32   `json:"events_dropped,omitempty"`

	tracer *Tracer
	sink   *eventSink
	// ended is driven by the atomic package functions rather than an
	// atomic.Bool so finished Span values stay freely copyable (the
	// recorder ring and its readers copy them by value).
	ended uint32
	// seq is the recorder-assigned record sequence number; it lets a
	// Pusher drain "spans finished since my last push" from the ring
	// without the recorder keeping per-consumer state.
	seq uint64
}

// Event records an informational decision event on a live span. Events
// on an ended (or nil) span are dropped — the span has already been
// snapshotted into the recorder. Safe for concurrent use.
func (s *Span) Event(name string, attrs ...Attr) { s.event(LevelInfo, name, attrs) }

// WarnEvent records a tail-suspect decision event (see LevelWarn).
func (s *Span) WarnEvent(name string, attrs ...Attr) { s.event(LevelWarn, name, attrs) }

func (s *Span) event(level EventLevel, name string, attrs []Attr) {
	if s == nil || s.sink == nil || atomic.LoadUint32(&s.ended) != 0 {
		return
	}
	sk := s.sink
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if level == LevelWarn {
		sk.warn = true
	}
	if len(sk.events) >= MaxSpanEvents {
		sk.dropped++
		return
	}
	sk.events = append(sk.events, Event{
		Name:   name,
		Time:   time.Now(),
		Level:  level,
		Probes: sk.probes.Load(),
		Attrs:  attrs,
	})
}

// AddProbes charges n oracle probes (or replica RPCs) to the span's
// running Def 2.2 cost ledger. Events recorded afterwards carry the
// updated count. No-op on a nil or ended span.
func (s *Span) AddProbes(n int64) {
	if s == nil || s.sink == nil {
		return
	}
	s.sink.probes.Add(n)
}

// End stamps the span's duration, freezes its event list and probe
// count, and records it into the tracer's ring buffer (and the slow
// log, if one is attached). End is idempotent; only the first call
// records. No-op on a nil span.
func (s *Span) End() {
	if s == nil || s.tracer == nil || atomic.SwapUint32(&s.ended, 1) != 0 {
		return
	}
	s.Duration = time.Since(s.Start)
	done := Span{
		Trace:    s.Trace,
		ID:       s.ID,
		Parent:   s.Parent,
		Name:     s.Name,
		Start:    s.Start,
		Duration: s.Duration,
	}
	warn := false
	if sk := s.sink; sk != nil {
		sk.mu.Lock()
		done.Events = sk.events
		done.EventsDropped = sk.dropped
		warn = sk.warn
		sk.mu.Unlock()
		done.Probes = sk.probes.Load()
		s.Probes = done.Probes
	}
	s.tracer.rec.record(done)
	if l := s.tracer.slow.Load(); l != nil {
		l.offer(done, warn)
	}
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// activeSpanKey locates the live *Span in a context, distinct from
// spanCtxKey's copyable SpanContext: the SpanContext crosses process
// boundaries, the live span pointer is how in-process callees deep in
// the stack (a router retry loop, an engine middleware) attach events
// to the span that owns them without threading it explicitly.
type activeSpanKey struct{}

// ContextWithActiveSpan returns ctx carrying s as the live span for
// AddEvent/AddProbes. StartSpan installs this automatically.
func ContextWithActiveSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, activeSpanKey{}, s) //lint:alloc span propagation is the opt-in price of tracing; untraced queries never reach it
}

// ActiveSpanFromContext returns the live span carried by ctx, or nil.
func ActiveSpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(activeSpanKey{}).(*Span)
	return s
}

// AddEvent records an informational event on the span active in ctx.
// No-op when ctx carries no live span (untraced queries): the call
// costs one context lookup and nothing else.
func AddEvent(ctx context.Context, name string, attrs ...Attr) {
	ActiveSpanFromContext(ctx).event(LevelInfo, name, attrs)
}

// AddWarnEvent records a tail-suspect event on the span active in ctx
// (see LevelWarn). No-op when ctx carries no live span.
func AddWarnEvent(ctx context.Context, name string, attrs ...Attr) {
	ActiveSpanFromContext(ctx).event(LevelWarn, name, attrs)
}

// AddProbes charges n probes to the span active in ctx. No-op when ctx
// carries no live span.
func AddProbes(ctx context.Context, n int64) {
	ActiveSpanFromContext(ctx).AddProbes(n)
}

// tracerSeq distinguishes tracers within one process; combined with
// the PID it keeps concurrently minting processes on one host from
// colliding. Trace randomness is operational-only (it names query
// records, it never reaches an answer), so uniqueness — not
// unpredictability — is the requirement.
var tracerSeq atomic.Uint64

// Tracer mints spans and records finished ones into a fixed-size ring
// buffer. It is safe for concurrent use; recording is one mutex-guarded
// copy into the ring, no allocation after construction.
type Tracer struct {
	base uint64
	ctr  atomic.Uint64
	rec  *SpanRecorder
	slow atomic.Pointer[SlowTraceLog]
}

// NewTracer builds a tracer whose recorder retains the last capacity
// finished spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	return &Tracer{
		base: splitmix64(uint64(os.Getpid())<<32 ^ tracerSeq.Add(1)),
		rec:  NewSpanRecorder(capacity),
	}
}

// Recorder returns the tracer's span ring buffer.
func (t *Tracer) Recorder() *SpanRecorder { return t.rec }

// SetSlowLog attaches a SlowTraceLog: every span finished after this
// call is offered to it for tail-based capture. Pass nil to detach.
func (t *Tracer) SetSlowLog(l *SlowTraceLog) { t.slow.Store(l) }

// SlowLog returns the attached SlowTraceLog, or nil.
func (t *Tracer) SlowLog() *SlowTraceLog { return t.slow.Load() }

// StartSpan begins a span named name. If ctx carries a SpanContext the
// new span joins that trace as a child (this is how a replica's engine
// span lands in the trace the gateway minted); otherwise a fresh trace
// is minted and this span is its root. The returned context carries
// the new span for callees; call End on the span when the work
// finishes.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{ //lint:alloc one span per traced query by design; the recorder ring retains it after End
		Name:   name,
		Start:  time.Now(),
		ID:     SpanID(t.newID()),
		tracer: t,
		sink:   &eventSink{}, //lint:alloc one event sink per traced query; carries the span's mutable event list so finished Span values stay copyable
	}
	if parent, ok := SpanFromContext(ctx); ok {
		s.Trace = parent.Trace
		s.Parent = parent.Span
	} else {
		s.Trace = TraceID(t.newID())
	}
	// The slow log learns about span starts so that at End time it can
	// tell a still-running local parent apart from a remote one.
	if l := t.slow.Load(); l != nil {
		l.track(s.Trace, s.ID)
	}
	return ContextWithActiveSpan(ContextWithSpan(ctx, s.Context()), s), s
}

// newID returns a nonzero process-locally unique ID.
func (t *Tracer) newID() uint64 {
	for {
		if id := splitmix64(t.base ^ t.ctr.Add(1)); id != 0 {
			return id
		}
	}
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap
// bijective scrambler turning sequential inputs into well-spread IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpanRecorder is a fixed-size ring buffer of finished spans: recent
// traces stay inspectable (-trace dumps, /debug/traces) at a hard
// memory bound, and old spans age out instead of growing the process.
type SpanRecorder struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewSpanRecorder builds a recorder retaining the last capacity spans
// (minimum 1).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRecorder{buf: make([]Span, 0, capacity)}
}

// record appends one finished span, overwriting the oldest when full.
func (r *SpanRecorder) record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	s.seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns the number of spans ever recorded (retained or aged
// out).
func (r *SpanRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Spans returns the retained spans sorted by start time.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	out := make([]Span, len(r.buf))
	copy(out, r.buf)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Trace returns the retained spans belonging to one trace, sorted by
// start time.
func (r *SpanRecorder) Trace(id TraceID) []Span {
	all := r.Spans()
	out := all[:0]
	for _, s := range all {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// SpansSince returns the retained spans recorded after cursor (a value
// previously returned by SpansSince; start from 0), in record order,
// plus the new cursor. Spans that aged out of the ring between calls
// are lost to this consumer — the ring bounds memory, not delivery.
func (r *SpanRecorder) SpansSince(cursor uint64) ([]Span, uint64) {
	r.mu.Lock()
	var out []Span
	next := cursor
	for i := range r.buf {
		if s := r.buf[i]; s.seq > cursor {
			out = append(out, s)
			if s.seq > next {
				next = s.seq
			}
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, next
}

// WriteText dumps the retained spans one per line — the -trace dump
// format of lcaserver and lcagateway. Lines share a trace via the
// trace= column, greppable across the dumps of different processes.
// Span events render indented under their span, each stamped with the
// probe count accumulated when it fired.
func (r *SpanRecorder) WriteText(w io.Writer) error {
	spans := r.Spans()
	if _, err := fmt.Fprintf(w, "# %d spans retained (%d recorded)\n", len(spans), r.Total()); err != nil {
		return err
	}
	return writeSpansText(w, spans)
}

// WriteTrace dumps one trace's retained spans in WriteText format —
// the /debug/traces?trace=<id> view.
func (r *SpanRecorder) WriteTrace(w io.Writer, id TraceID) error {
	spans := r.Trace(id)
	if _, err := fmt.Fprintf(w, "# trace %s: %d spans retained\n", id, len(spans)); err != nil {
		return err
	}
	return writeSpansText(w, spans)
}

// writeSpansText renders spans (and their events) in the dump format.
func writeSpansText(w io.Writer, spans []Span) error {
	for _, s := range spans {
		if _, err := fmt.Fprintf(w, "trace=%s span=%s parent=%s name=%s start=%s dur=%s probes=%d\n",
			s.Trace, s.ID, s.Parent, s.Name,
			s.Start.Format(time.RFC3339Nano), s.Duration, s.Probes); err != nil {
			return err
		}
		for _, e := range s.Events {
			if err := writeEventText(w, s.Start, e); err != nil {
				return err
			}
		}
		if s.EventsDropped > 0 {
			if _, err := fmt.Fprintf(w, "  ... %d events dropped past the %d-event bound\n", s.EventsDropped, MaxSpanEvents); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeEventText renders one event line: offset from span start, level,
// probe ledger position, then the attributes.
func writeEventText(w io.Writer, spanStart time.Time, e Event) error {
	var b strings.Builder
	fmt.Fprintf(&b, "  event=%s +%s level=%s probes=%d", e.Name, e.Time.Sub(spanStart), e.Level, e.Probes)
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
