package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestStartSpanMintsAndPropagates(t *testing.T) {
	tr := NewTracer(64)
	ctx, root := tr.StartSpan(context.Background(), "gateway.query")
	if root.Trace == 0 || root.ID == 0 {
		t.Fatalf("root span has zero IDs: %+v", root)
	}
	if root.Parent != 0 {
		t.Errorf("root span has parent %v, want 0", root.Parent)
	}
	sc, ok := SpanFromContext(ctx)
	if !ok || sc.Trace != root.Trace || sc.Span != root.ID {
		t.Fatalf("SpanFromContext = (%+v, %v), want the root span's context", sc, ok)
	}

	// A child — possibly started by a different tracer in a different
	// process, as the replica's engine does — joins the same trace.
	tr2 := NewTracer(64)
	_, child := tr2.StartSpan(ctx, "engine.query")
	if child.Trace != root.Trace {
		t.Errorf("child trace %v, want parent's %v", child.Trace, root.Trace)
	}
	if child.Parent != root.ID {
		t.Errorf("child parent %v, want %v", child.Parent, root.ID)
	}
	if child.ID == root.ID {
		t.Error("child reused the parent's span ID")
	}

	child.End()
	root.End()
	root.End() // idempotent
	if got := tr.Recorder().Total(); got != 1 {
		t.Errorf("tracer recorded %d spans, want 1 (End must be idempotent)", got)
	}
	byTrace := tr.Recorder().Trace(root.Trace)
	if len(byTrace) != 1 || byTrace[0].Name != "gateway.query" {
		t.Errorf("Trace(%v) = %+v, want the one root span", root.Trace, byTrace)
	}
	if got := tr2.Recorder().Trace(root.Trace); len(got) != 1 || got[0].Name != "engine.query" {
		t.Errorf("second recorder Trace(%v) = %+v, want the child span", root.Trace, got)
	}
}

func TestSpanContextAbsentWithoutTrace(t *testing.T) {
	if sc, ok := SpanFromContext(context.Background()); ok {
		t.Errorf("SpanFromContext on a bare context = %+v, want absent", sc)
	}
	// An invalid (zero-trace) context never reads back as present.
	ctx := ContextWithSpan(context.Background(), SpanContext{})
	if _, ok := SpanFromContext(ctx); ok {
		t.Error("zero SpanContext read back as valid")
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), "work")
		s.End()
	}
	rec := tr.Recorder()
	if got := rec.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := len(rec.Spans()); got != 4 {
		t.Errorf("retained %d spans, want ring capacity 4", got)
	}
}

func TestTracerConcurrentUniqueIDs(t *testing.T) {
	tr := NewTracer(1)
	const workers, per = 8, 500
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, s := tr.StartSpan(context.Background(), "w")
				ids[w] = append(ids[w], uint64(s.Trace), uint64(s.ID))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, chunk := range ids {
		for _, id := range chunk {
			if id == 0 {
				t.Fatal("minted a zero ID")
			}
			if seen[id] {
				t.Fatalf("duplicate ID %x", id)
			}
			seen[id] = true
		}
	}
}

func TestWriteTextDumpFormat(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.StartSpan(context.Background(), "gateway.query")
	_, child := tr.StartSpan(ctx, "engine.query")
	child.End()
	root.End()

	var sb strings.Builder
	if err := tr.Recorder().WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "# 2 spans retained (2 recorded)") {
		t.Errorf("dump missing header; got:\n%s", out)
	}
	if !strings.Contains(out, "trace="+root.Trace.String()) {
		t.Errorf("dump missing trace ID %s; got:\n%s", root.Trace, out)
	}
	if !strings.Contains(out, "name=gateway.query") || !strings.Contains(out, "name=engine.query") {
		t.Errorf("dump missing span names; got:\n%s", out)
	}
	if !strings.Contains(out, "parent="+root.ID.String()) {
		t.Errorf("dump missing child's parent pointer; got:\n%s", out)
	}
}
