package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	// Exhaustive low range plus probes across the full int64 span: the
	// index must be monotone non-decreasing in the value, in range, and
	// every value must fall at or below its bucket's upper bound.
	values := []int64{}
	for v := int64(0); v < 4096; v++ {
		values = append(values, v)
	}
	for shift := uint(12); shift < 63; shift++ {
		base := int64(1) << shift
		values = append(values, base-1, base, base+1, base+base/3)
	}
	values = append(values, math.MaxInt64)

	prevIdx := -1
	var prevVal int64 = -1
	for _, v := range values {
		if v < prevVal {
			continue // probe construction overlaps; only check sorted pairs
		}
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d, out of [0, %d)", v, idx, numBuckets)
		}
		if idx < prevIdx {
			t.Fatalf("bucketIndex not monotone: value %d -> bucket %d after value %d -> bucket %d", v, idx, prevVal, prevIdx)
		}
		if upper := bucketUpper(idx); v > upper {
			t.Fatalf("value %d exceeds its bucket %d upper bound %d", v, idx, upper)
		}
		prevIdx, prevVal = idx, v
	}
}

func TestBucketUpperMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d) = %d, not above bucketUpper(%d) = %d", i, u, i-1, prev)
		}
		prev = u
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	ds := []time.Duration{time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond, time.Millisecond}
	var sum time.Duration
	for _, d := range ds {
		h.Observe(d)
		sum += d
	}
	if h.Count() != int64(len(ds)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(ds))
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %v, want %v", h.Sum(), sum)
	}
	if h.Max() != time.Millisecond {
		t.Errorf("Max = %v, want %v", h.Max(), time.Millisecond)
	}
	// The p99 must land in the top observation's bucket: within one
	// sub-bucket (6.25%) above it.
	p99 := h.Quantile(0.99)
	if p99 < time.Millisecond || p99 > time.Millisecond+time.Millisecond/8 {
		t.Errorf("Quantile(0.99) = %v, want ~%v (upper bucket bound)", p99, time.Millisecond)
	}
	// Negative observations clamp instead of corrupting buckets.
	h.Observe(-time.Second)
	if h.Count() != int64(len(ds))+1 {
		t.Errorf("Count after negative observe = %d", h.Count())
	}
}

// TestHistogramConcurrentHammer drives one histogram from 8 goroutines
// (run under -race in CI) and asserts the cross-field invariants that
// survive relaxed per-field atomicity: exact count, exact sum, exact
// max, bucket totals equal to count, and quantiles that are monotone
// in q and bounded by max.
func TestHistogramConcurrentHammer(t *testing.T) {
	const (
		workers       = 8
		perWorker     = 20_000
		spreadBuckets = 977 // prime stride so workers hit many buckets
	)
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Deterministic per-worker value stream spanning ns..ms.
				v := time.Duration((i*spreadBuckets+w)%1_000_000 + 1)
				h.Observe(v)
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if h.Count() != total {
		t.Errorf("Count = %d, want %d", h.Count(), total)
	}
	var wantSum, wantMax int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			v := int64((i*spreadBuckets+w)%1_000_000 + 1)
			wantSum += v
			if v > wantMax {
				wantMax = v
			}
		}
	}
	if int64(h.Sum()) != wantSum {
		t.Errorf("Sum = %d, want %d", int64(h.Sum()), wantSum)
	}
	if int64(h.Max()) != wantMax {
		t.Errorf("Max = %d, want %d", int64(h.Max()), wantMax)
	}
	var bucketTotal int64
	for i := range h.counts {
		bucketTotal += h.counts[i].Load()
	}
	if bucketTotal != total {
		t.Errorf("bucket total = %d, want %d", bucketTotal, total)
	}
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	prev := time.Duration(-1)
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v below Quantile at smaller q (%v): quantiles must be monotone", q, v, prev)
		}
		prev = v
	}
	// The top quantile may exceed max only by its bucket rounding.
	if top := h.Quantile(1); top > h.Max()+h.Max()/8 {
		t.Errorf("Quantile(1) = %v far above Max = %v", top, h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// A uniform ramp 1..N: every quantile upper bound must sit within
	// one sub-bucket (1/16) of the true order statistic.
	h := NewHistogram()
	const n = 100_000
	for v := 1; v <= n; v++ {
		h.Observe(time.Duration(v))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		truth := float64(n) * q
		got := float64(h.Quantile(q))
		if got < truth*(1-1.0/subBucketCount) || got > truth*(1+2.0/subBucketCount) {
			t.Errorf("Quantile(%v) = %v, want within a sub-bucket of %v", q, got, truth)
		}
	}
}
