// Package stats provides the small statistical toolkit the experiment
// harness uses to summarize measurements: moments, confidence
// intervals (normal and Wilson), exact sample quantiles, and fixed-bin
// histograms. Everything is deterministic and allocation-light.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData indicates a summary requested over an empty sample.
var ErrNoData = errors.New("stats: no data")

// Summary holds the usual scalar descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes the Summary of xs. It returns ErrNoData for an
// empty slice.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{
		N:   len(xs),
		Min: math.Inf(1),
		Max: math.Inf(-1),
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the empirical p-quantile of xs using the
// nearest-rank method on a sorted copy. It returns NaN for empty
// input; p is clamped into [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	k := int(math.Ceil(p * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	return sorted[k-1]
}

// z95 is the two-sided 95% standard-normal critical value.
const z95 = 1.959963984540054

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean of xs. It returns 0 for fewer than 2 samples.
func CI95(xs []float64) float64 {
	s, err := Summarize(xs)
	if err != nil || s.N < 2 {
		return 0
	}
	return z95 * s.Std / math.Sqrt(float64(s.N))
}

// Proportion is an estimated probability with its Wilson 95% interval.
type Proportion struct {
	Successes int
	Trials    int
	Estimate  float64
	Lo        float64
	Hi        float64
}

// NewProportion computes the Wilson score interval for successes out
// of trials, the recommended interval for success probabilities near 0
// or 1 (which the lower-bound games produce constantly).
func NewProportion(successes, trials int) (Proportion, error) {
	if trials <= 0 {
		return Proportion{}, fmt.Errorf("%w: trials=%d", ErrNoData, trials)
	}
	if successes < 0 || successes > trials {
		return Proportion{}, fmt.Errorf("stats: successes %d out of range [0, %d]", successes, trials)
	}
	n := float64(trials)
	p := float64(successes) / n
	z := z95
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	return Proportion{
		Successes: successes,
		Trials:    trials,
		Estimate:  p,
		Lo:        math.Max(0, center-half),
		Hi:        math.Min(1, center+half),
	}, nil
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range clamp into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi). It returns an error for a non-positive bin count or an
// empty range.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram [%v, %v) x %d bins", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 || i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Online accumulates mean and variance in one pass with Welford's
// algorithm — O(1) memory for streaming measurement collection (the
// simulator and servers use it where retaining every sample would be
// wasteful). The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the running sample variance (n-1 denominator; 0 for
// fewer than two observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the running sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Merge folds another accumulator into this one (Chan et al.'s
// parallel variance combination), enabling per-goroutine accumulation.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	total := n1 + n2
	o.mean += delta * n2 / total
	o.m2 += other.m2 + delta*delta*n1*n2/total
	o.n += other.n
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
}
