package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std with n-1 denominator: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Median != 4 {
		t.Errorf("Median = %v, want 4", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("error = %v, want ErrNoData", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Std != 0 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("single-element summary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{{0, 1}, {0.2, 1}, {0.21, 2}, {0.5, 3}, {1, 5}, {-1, 1}, {2, 5}}
	for _, tc := range tests {
		if got := Quantile(xs, tc.p); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	// Input must not be mutated (Quantile sorts a copy).
	unsorted := []float64{3, 1, 2}
	_ = Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = float64(i % 2)
	}
	for i := range large {
		large[i] = float64(i % 2)
	}
	if CI95(small) <= CI95(large) {
		t.Errorf("CI95 did not shrink: %v <= %v", CI95(small), CI95(large))
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of single sample != 0")
	}
}

func TestProportionWilson(t *testing.T) {
	p, err := NewProportion(50, 100)
	if err != nil {
		t.Fatalf("NewProportion: %v", err)
	}
	if p.Estimate != 0.5 {
		t.Errorf("Estimate = %v", p.Estimate)
	}
	if p.Lo >= p.Estimate || p.Hi <= p.Estimate {
		t.Errorf("interval [%v, %v] does not bracket estimate", p.Lo, p.Hi)
	}
	// Wilson interval at p=0.5, n=100 is roughly ±0.097.
	if p.Lo < 0.39 || p.Lo > 0.41 || p.Hi < 0.59 || p.Hi > 0.61 {
		t.Errorf("interval [%v, %v] outside expected range", p.Lo, p.Hi)
	}
}

func TestProportionExtremes(t *testing.T) {
	zero, err := NewProportion(0, 50)
	if err != nil {
		t.Fatalf("NewProportion: %v", err)
	}
	if zero.Lo > 1e-12 || zero.Hi <= 0 {
		t.Errorf("zero-successes interval [%v, %v]", zero.Lo, zero.Hi)
	}
	all, err := NewProportion(50, 50)
	if err != nil {
		t.Fatalf("NewProportion: %v", err)
	}
	if all.Hi < 1-1e-12 || all.Lo >= 1 {
		t.Errorf("all-successes interval [%v, %v]", all.Lo, all.Hi)
	}
}

func TestProportionErrors(t *testing.T) {
	if _, err := NewProportion(1, 0); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := NewProportion(-1, 10); err == nil {
		t.Error("negative successes accepted")
	}
	if _, err := NewProportion(11, 10); err == nil {
		t.Error("successes > trials accepted")
	}
}

func TestProportionBracketsQuick(t *testing.T) {
	f := func(sRaw, tRaw uint16) bool {
		trials := int(tRaw%1000) + 1
		successes := int(sRaw) % (trials + 1)
		p, err := NewProportion(successes, trials)
		if err != nil {
			return false
		}
		return p.Lo >= 0 && p.Hi <= 1 && p.Lo <= p.Hi &&
			p.Lo <= p.Estimate+1e-12 && p.Hi >= p.Estimate-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	// -3 clamps to bin 0; 100 clamps to bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 100
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	if got := h.Fraction(0); math.Abs(got-3.0/7) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
	if h.Fraction(99) != 0 {
		t.Error("out-of-range Fraction != 0")
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("bins=0 accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	batch, err := Summarize(xs)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if o.N() != batch.N || math.Abs(o.Mean()-batch.Mean) > 1e-12 {
		t.Errorf("online mean %v vs batch %v", o.Mean(), batch.Mean)
	}
	if math.Abs(o.Std()-batch.Std) > 1e-12 {
		t.Errorf("online std %v vs batch %v", o.Std(), batch.Std)
	}
	if o.Min() != batch.Min || o.Max() != batch.Max {
		t.Errorf("online min/max %v/%v vs batch %v/%v", o.Min(), o.Max(), batch.Min, batch.Max)
	}
}

func TestOnlineZeroValueAndSmall(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Var() != 0 {
		t.Error("zero value not neutral")
	}
	o.Add(5)
	if o.Var() != 0 || o.Mean() != 5 || o.Min() != 5 || o.Max() != 5 {
		t.Errorf("single observation: %+v", o)
	}
}

func TestOnlineMergeEqualsSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 0.5}
	var whole Online
	for _, x := range xs {
		whole.Add(x)
	}
	var a, b Online
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() || math.Abs(a.Mean()-whole.Mean()) > 1e-12 ||
		math.Abs(a.Var()-whole.Var()) > 1e-12 ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged %+v vs sequential %+v", a, whole)
	}
	// Merging empties is a no-op in both directions.
	var empty Online
	before := a
	a.Merge(empty)
	if a != before {
		t.Error("merging empty changed state")
	}
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Error("merge into empty lost data")
	}
}

func TestOnlineQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		xs := make([]float64, n)
		v := float64(seed%1000) / 7
		var o Online
		for i := range xs {
			v = v*1.1 + float64(i) - 25
			xs[i] = v
			o.Add(v)
		}
		batch, err := Summarize(xs)
		if err != nil {
			return false
		}
		return math.Abs(o.Mean()-batch.Mean) < 1e-6*(1+math.Abs(batch.Mean)) &&
			math.Abs(o.Std()-batch.Std) < 1e-6*(1+batch.Std)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
