package gateway

import (
	"context"
	"testing"
)

// BenchmarkGatewayVsDirect compares repeat-query serving through the
// gateway (answers resident in the deterministic cache) against direct
// single-connection queries to a replica (every query re-runs the LCA
// pipeline). The gap is the operational value of Theorem 4.1: because
// answers are immutable, the gateway may serve them from memory
// forever, and the cached path is orders of magnitude faster than
// recomputation — the acceptance bar is >= 5x.
func BenchmarkGatewayVsDirect(b *testing.B) {
	const n = 300
	addrs, _, _ := testFleet(b, n, 1)
	ctx := context.Background()

	b.Run("direct", func(b *testing.B) {
		client, err := dialDirect(addrs[0])
		if err != nil {
			b.Fatalf("dial direct: %v", err)
		}
		defer client.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.InSolution(ctx, i%n); err != nil {
				b.Fatalf("InSolution: %v", err)
			}
		}
	})

	b.Run("gateway-cached", func(b *testing.B) {
		gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		defer gw.Close()
		for i := 0; i < n; i++ { // warm every key
			if _, err := gw.InSolution(ctx, i); err != nil {
				b.Fatalf("warm InSolution: %v", err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gw.InSolution(ctx, i%n); err != nil {
				b.Fatalf("InSolution: %v", err)
			}
		}
	})

	b.Run("gateway-batch-cached", func(b *testing.B) {
		gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		defer gw.Close()
		indices := make([]int, n)
		for i := range indices {
			indices[i] = i
		}
		if _, err := gw.InSolutionBatch(ctx, indices); err != nil {
			b.Fatalf("warm InSolutionBatch: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gw.InSolutionBatch(ctx, indices); err != nil {
				b.Fatalf("InSolutionBatch: %v", err)
			}
		}
	})
}
