package gateway

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/engine"
)

func TestBreakerTripAndProbeCycle(t *testing.T) {
	trips, closes := 0, 0
	b := &breaker{
		threshold: 3,
		cooldown:  10 * time.Millisecond,
		onTrip:    func() { trips++ },
		onClose:   func() { closes++ },
	}
	if b.current() != breakerClosed {
		t.Fatal("breaker should start closed")
	}

	// Failures below the threshold keep the circuit closed; a success
	// resets the streak.
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if b.current() != breakerClosed || trips != 0 {
		t.Fatalf("state = %v trips = %d after interleaved successes, want closed/0", b.current(), trips)
	}

	// The third consecutive failure trips the circuit.
	if !b.failure() {
		t.Fatal("threshold-reaching failure should report a trip")
	}
	if b.current() != breakerOpen || trips != 1 {
		t.Fatalf("state = %v trips = %d, want open/1", b.current(), trips)
	}

	// No probe inside the cooldown window.
	if b.tryProbe() {
		t.Fatal("probe allowed before cooldown elapsed")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.tryProbe() {
		t.Fatal("probe refused after cooldown elapsed")
	}
	if b.current() != breakerHalfOpen {
		t.Fatalf("state after tryProbe = %v, want half-open", b.current())
	}

	// A failed probe reopens for another cooldown (and counts a trip).
	b.failure()
	if b.current() != breakerOpen || trips != 2 {
		t.Fatalf("state = %v trips = %d after failed probe, want open/2", b.current(), trips)
	}
	time.Sleep(15 * time.Millisecond)
	if !b.tryProbe() {
		t.Fatal("re-probe refused after second cooldown")
	}

	// A successful probe closes the circuit and counts the recovery.
	b.success()
	if b.current() != breakerClosed || closes != 1 {
		t.Fatalf("state = %v closes = %d after probe success, want closed/1", b.current(), closes)
	}
}

func TestTokenBucketAdmission(t *testing.T) {
	b := newTokenBucket(1000, 10) // starts full at 10 tokens

	if !b.take(10) {
		t.Fatal("full bucket refused its burst")
	}
	if b.take(5) {
		t.Fatal("empty bucket admitted 5 tokens")
	}
	// All-or-nothing: a partial fit is a rejection, and the failed take
	// must not have drained anything.
	time.Sleep(5 * time.Millisecond) // ~5 tokens refill
	if b.take(10) {
		t.Fatal("bucket admitted more than its refill")
	}
	if !b.take(1) {
		t.Fatal("rejected take drained tokens; admission must be all-or-nothing")
	}
	// Refill caps at the burst.
	time.Sleep(30 * time.Millisecond) // would be ~30 tokens uncapped
	if b.take(11) {
		t.Fatal("bucket exceeded its burst cap")
	}
	if !b.take(10) {
		t.Fatal("bucket below burst after a long idle refill")
	}
}

func TestAuthorizerAllow(t *testing.T) {
	a := NewAuthorizer()
	ta := engine.TenantID{Instance: 1, Seed: 2}
	tb := engine.TenantID{Instance: 2, Seed: 5}
	a.Grant("alpha", ta)
	a.Grant("root") // wildcard

	if !a.Allow([]byte("alpha"), ta) {
		t.Error("granted key rejected for its tenant")
	}
	if a.Allow([]byte("alpha"), tb) {
		t.Error("key granted tenant a was allowed tenant b")
	}
	if !a.Allow([]byte("root"), ta) || !a.Allow([]byte("root"), tb) {
		t.Error("wildcard key rejected")
	}
	if a.Allow([]byte("wrong"), ta) {
		t.Error("unknown key allowed")
	}
	if a.Allow(nil, ta) || a.Allow([]byte{}, ta) {
		t.Error("empty key allowed")
	}
}

func TestParseAPIKeys(t *testing.T) {
	const file = `
# deployment keys
alpha 1:2
beta 1:2 2:5

root *
`
	a, err := ParseAPIKeys(strings.NewReader(file))
	if err != nil {
		t.Fatalf("ParseAPIKeys: %v", err)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	ta := engine.TenantID{Instance: 1, Seed: 2}
	tb := engine.TenantID{Instance: 2, Seed: 5}
	if !a.Allow([]byte("alpha"), ta) || a.Allow([]byte("alpha"), tb) {
		t.Error("alpha grants wrong")
	}
	if !a.Allow([]byte("beta"), ta) || !a.Allow([]byte("beta"), tb) {
		t.Error("beta grants wrong")
	}
	if !a.Allow([]byte("root"), tb) {
		t.Error("root wildcard wrong")
	}

	for _, bad := range []string{
		"keyonly\n",
		"key notatenant\n",
		"key 1:\n",
		"key x:2\n",
	} {
		if _, err := ParseAPIKeys(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseAPIKeys(%q) accepted a malformed line", bad)
		}
	}
}

// TestGatewayQuotaRejects pins the admission path end to end in
// process: a rate-limited tenant sees ErrQuotaExceeded once its bucket
// drains, the rejects are counted per tenant and globally, and the
// default tenant is unaffected.
func TestGatewayQuotaRejects(t *testing.T) {
	addrs, _, _ := testFleet(t, 100, 1)
	tb := engine.TenantID{Instance: 0, Seed: uint64(testParams.Seed)}
	gw, err := New(Options{
		Replicas: addrs,
		Seed:     uint64(testParams.Seed),
		Tenants: []TenantOptions{
			// Reconfigures the default tenant with a tiny quota: frames
			// stay untenanted, so a plain single-tenant fleet serves it.
			{Instance: tb.Instance, Seed: tb.Seed, RateLimit: 0.001, Burst: 3},
		},
		HedgeDelay: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	ctx := context.Background()

	for k := 0; k < 3; k++ {
		if _, err := gw.InSolution(ctx, k); err != nil {
			t.Fatalf("admitted query %d: %v", k, err)
		}
	}
	if _, err := gw.InSolution(ctx, 99); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("query past burst: error = %v, want ErrQuotaExceeded", err)
	}
	// Batch admission is all-or-nothing.
	if _, err := gw.InSolutionBatch(ctx, []int{1, 2}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("batch past burst: error = %v, want ErrQuotaExceeded", err)
	}

	m := gw.Metrics()
	if m.QuotaRejects != 2 {
		t.Errorf("QuotaRejects = %d, want 2", m.QuotaRejects)
	}
	tm, ok := gw.TenantMetrics(tb)
	if !ok || tm.QuotaRejects != 2 || tm.Queries != 3 {
		t.Errorf("TenantMetrics = %+v (ok=%v), want 3 queries, 2 rejects", tm, ok)
	}
}

// TestGatewayResolveAuth drives Resolve directly: the TenantBackend
// seam must reject missing/unknown/ungranted keys (counting them) and
// route granted keys to the right tenant backend.
func TestGatewayResolveAuth(t *testing.T) {
	addrs, _, _ := testFleet(t, 100, 1)
	def := engine.TenantID{Instance: 0, Seed: uint64(testParams.Seed)}
	other := engine.TenantID{Instance: 7, Seed: 9}
	auth := NewAuthorizer()
	auth.Grant("alpha", def)
	gw, err := New(Options{
		Replicas:   addrs,
		Seed:       def.Seed,
		Tenants:    []TenantOptions{{Instance: other.Instance, Seed: other.Seed}},
		Auth:       auth,
		HedgeDelay: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	ctx := context.Background()

	// Untenanted frame with the granted key resolves to the default.
	b, err := gw.Resolve(ctx, cluster.TenantQuery{Key: []byte("alpha")})
	if err != nil {
		t.Fatalf("Resolve default: %v", err)
	}
	if b.(*tenant).id != def {
		t.Errorf("resolved tenant %s, want default %s", b.(*tenant).id, def)
	}
	// Missing key, wrong key, and a grant not covering the tenant are
	// all ErrUnauthorized.
	for name, q := range map[string]cluster.TenantQuery{
		"missing key":  {},
		"unknown key":  {Key: []byte("nope")},
		"wrong tenant": {Key: []byte("alpha"), ID: other, Tenanted: true},
	} {
		if _, err := gw.Resolve(ctx, q); !errors.Is(err, ErrUnauthorized) {
			t.Errorf("%s: error = %v, want ErrUnauthorized", name, err)
		}
	}
	if got := gw.Metrics().AuthRejects; got != 3 {
		t.Errorf("AuthRejects = %d, want 3", got)
	}
	// A tenant the gateway does not serve is unknown even with a
	// wildcard-ish grant structure.
	auth.Grant("omni")
	if _, err := gw.Resolve(ctx, cluster.TenantQuery{
		Key: []byte("omni"), ID: engine.TenantID{Instance: 99, Seed: 99}, Tenanted: true,
	}); !errors.Is(err, cluster.ErrUnknownTenant) {
		t.Errorf("unserved tenant: error = %v, want ErrUnknownTenant", err)
	}
	// Without auth rejections, the known tenants resolve.
	bt, err := gw.Resolve(ctx, cluster.TenantQuery{Key: []byte("omni"), ID: other, Tenanted: true})
	if err != nil {
		t.Fatalf("Resolve other: %v", err)
	}
	if bt.(*tenant).id != other {
		t.Errorf("resolved %s, want %s", bt.(*tenant).id, other)
	}
}

func TestTenantScopedWireScrape(t *testing.T) {
	addrs, _, _ := testFleet(t, 100, 1)
	def := engine.TenantID{Instance: 0, Seed: uint64(testParams.Seed)}
	gw, err := New(Options{Replicas: addrs, Seed: def.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	srv, err := cluster.NewQueryServer("127.0.0.1:0", gw)
	if err != nil {
		t.Fatalf("NewQueryServer: %v", err)
	}
	defer srv.Close()
	c, err := cluster.DialLCA(srv.Addr(), 0)
	if err != nil {
		t.Fatalf("DialLCA: %v", err)
	}
	defer c.Close()

	ctx := context.Background()
	for _, item := range []int{3, 7, 3} { // repeat lands a cache hit
		if _, err := c.InSolution(ctx, item); err != nil {
			t.Fatalf("InSolution(%d): %v", item, err)
		}
	}

	// The tenant-scoped scrape answers from the gateway's per-tenant
	// counters (cluster.TenantMetricsProvider), unlabeled because the
	// scope is already one tenant.
	text, err := c.ScrapeTenantMetrics(ctx, def)
	if err != nil {
		t.Fatalf("ScrapeTenantMetrics: %v", err)
	}
	for _, want := range []string{
		"lcakp_gateway_tenant_queries_total 3",
		"lcakp_gateway_tenant_cache_hits_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, text)
		}
	}

	if _, err := c.ScrapeTenantMetrics(ctx, engine.TenantID{Instance: 9, Seed: 9}); !errors.Is(err, cluster.ErrRemote) {
		t.Errorf("unknown-tenant scrape error = %v, want ErrRemote", err)
	}
}
