package gateway

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/engine"
	"lcakp/internal/obs"
	"lcakp/internal/store"
)

// ringVnodes is the virtual-node count per peer. 64 points per peer
// keep the keyspace split within a few percent of even for small
// fleets while the ring stays tiny (a few KB).
const ringVnodes = 64

// fnv1a64 hashes b with FNV-1a (the same family the answer cache
// shards with). The ring's placement is a pure function of the peer
// address list and the key bytes, so every gateway configured with the
// same -peers set computes the same owner for every key — agreement
// without coordination, the consistent-hashing analogue of the
// shared-seed argument.
func fnv1a64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// ringPoint is one virtual node: a hash position owned by a peer.
type ringPoint struct {
	hash uint64
	addr string
}

// peerRing consistent-hashes the (instance, seed, item) keyspace
// across gateway peers. It is immutable after construction.
type peerRing struct {
	points []ringPoint
	self   string
}

// newPeerRing builds the ring over the given peer addresses (self
// included). Addresses are deduplicated and sorted before placement,
// so the ring is identical regardless of flag order.
func newPeerRing(self string, peers []string) *peerRing {
	seen := map[string]bool{self: true}
	all := []string{self}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		all = append(all, p)
	}
	sort.Strings(all)
	r := &peerRing{self: self, points: make([]ringPoint, 0, len(all)*ringVnodes)}
	for _, addr := range all {
		for v := 0; v < ringVnodes; v++ {
			h := fnv1a64(append([]byte(addr), byte(v), byte(v>>8), byte(v>>16), byte(v>>24)))
			r.points = append(r.points, ringPoint{hash: h, addr: addr})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// owner returns the peer owning the (instance, seed, item) key: the
// first virtual node clockwise of the key's hash. Ownership is a
// function of the tenant and item only — never the epoch — so a
// tenant's keys stay with the same owners across churn and a sealed
// epoch's artifacts replicate to the same successor the epoch-0
// artifact did.
func (r *peerRing) owner(id engine.TenantID, item int) string {
	var key [24]byte
	put := func(off int, v uint64) {
		for k := 0; k < 8; k++ {
			key[off+k] = byte(v >> (8 * k))
		}
	}
	put(0, id.Instance)
	put(8, id.Seed)
	put(16, uint64(item))
	h := fnv1a64(key[:])
	// Binary search for the first point at or after h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// successor returns the first peer other than self clockwise of the
// tenant's ring position — the natural replica target for tenant id's
// artifacts. Empty when the ring has no other peer. Every gateway
// computes the same successor for a tenant (the ring is a pure
// function of the address set), so proactive replication needs no
// placement coordination.
func (r *peerRing) successor(id engine.TenantID) string {
	var key [16]byte
	for k := 0; k < 8; k++ {
		key[k] = byte(id.Instance >> (8 * k))
		key[8+k] = byte(id.Seed >> (8 * k))
	}
	h := fnv1a64(key[:])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if p.addr != r.self {
			return p.addr
		}
	}
	return ""
}

// peerFlight is one in-progress artifact fetch that concurrent misses
// for the same tenant join.
type peerFlight struct {
	done chan struct{}
	err  error
}

// peerTier is the gateway's inter-gateway artifact-fill layer: on a
// store miss it asks the key's owning peer for the whole tenant
// artifact over MsgStoreFetch, verifies it, and backfills the local
// store — after which every query for that tenant serves locally.
// Shipping whole artifacts (not individual bits) is the right
// granularity because answers are immutable: one transfer converts a
// remote tenant into a local one permanently.
type peerTier struct {
	g       *Gateway
	ring    *peerRing
	timeout time.Duration

	mu      sync.Mutex
	clients map[string]*cluster.LCAClient
	flights map[engine.VersionedTenant]*peerFlight
	// failedAt records the last failed fetch per (tenant, epoch) so
	// misses do not hammer a dead peer on every query; retry after
	// peerRetry. Keyed by epoch because a peer can hold epoch e's
	// artifact while e+1 is still materializing — one epoch failing to
	// fetch says nothing about the others.
	failedAt map[engine.VersionedTenant]time.Time
}

// peerRetry is the dwell time before re-attempting a failed peer fetch
// for the same tenant.
const peerRetry = 5 * time.Second

// newPeerTier builds the peer tier; self is this gateway's advertised
// address in the ring.
func newPeerTier(g *Gateway, self string, peers []string, timeout time.Duration) *peerTier {
	if timeout <= 0 {
		timeout = cluster.DefaultTimeout
	}
	return &peerTier{
		g:        g,
		ring:     newPeerRing(self, peers),
		timeout:  timeout,
		clients:  make(map[string]*cluster.LCAClient),
		flights:  make(map[engine.VersionedTenant]*peerFlight),
		failedAt: make(map[engine.VersionedTenant]time.Time),
	}
}

// client returns a live connection to peer addr, dialing or re-dialing
// as needed. Peer connections are cold-path (one artifact per tenant
// ever crosses them), so a single serialized connection per peer is
// plenty.
//
//lint:coldpath peer connections carry one artifact per (tenant, residency), not query traffic
func (p *peerTier) client(ctx context.Context, addr string) (*cluster.LCAClient, error) {
	p.mu.Lock()
	c := p.clients[addr]
	if c != nil && !c.Broken() {
		p.mu.Unlock()
		return c, nil
	}
	delete(p.clients, addr)
	p.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
	fresh, err := cluster.DialLCAContext(ctx, addr, p.timeout)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if existing := p.clients[addr]; existing != nil && !existing.Broken() {
		// A concurrent fill dialed first; keep theirs.
		p.mu.Unlock()
		_ = fresh.Close()
		return existing, nil
	}
	p.clients[addr] = fresh
	p.mu.Unlock()
	return fresh, nil
}

// fill resolves a store miss through the owning peer: fetch epoch
// vt.Epoch of tenant vt.Tenant's whole artifact, verify, backfill the
// local store, and answer item i from it. ok reports whether the peer
// path produced an answer; on false the caller falls back to replica
// fetch. Keys this gateway itself owns never fetch (the ring made us
// the authority — peers come to us), so fill is a no-op for them.
//
//lint:coldpath one whole-artifact transfer per (tenant, epoch, peer) residency; every later query is a local bit probe
func (p *peerTier) fill(ctx context.Context, vt engine.VersionedTenant, item int) (in, ok bool) {
	owner := p.ring.owner(vt.Tenant, item)
	if owner == p.ring.self {
		return false, false
	}
	p.mu.Lock()
	if t, failed := p.failedAt[vt]; failed && time.Since(t) < peerRetry {
		p.mu.Unlock()
		return false, false
	}
	if fl, inFlight := p.flights[vt]; inFlight {
		p.mu.Unlock()
		select {
		case <-fl.done:
			if fl.err != nil {
				return false, false
			}
			return p.lookupLocal(ctx, vt, item)
		case <-ctx.Done():
			return false, false
		}
	}
	fl := &peerFlight{done: make(chan struct{})}
	p.flights[vt] = fl
	p.mu.Unlock()

	fl.err = p.fetchAndBackfill(ctx, owner, vt)
	p.mu.Lock()
	delete(p.flights, vt)
	if fl.err != nil {
		p.failedAt[vt] = time.Now()
	} else {
		delete(p.failedAt, vt)
	}
	p.mu.Unlock()
	close(fl.done)
	if fl.err != nil {
		p.g.counters.peerFillErrors.Add(1)
		obs.AddWarnEvent(ctx, "gateway.peer_fill_error",
			obs.String("tenant", vt.String()), obs.String("peer", owner),
			obs.String("error", fl.err.Error()))
		return false, false
	}
	return p.lookupLocal(ctx, vt, item)
}

// fetchAndBackfill transfers one (tenant, epoch) artifact from peer
// addr and installs it in the local store. The artifact's own trailer
// checksum guards the transfer: corrupt bytes are rejected before
// touching disk, and the fetch is retried on the next miss. Epoch-0
// fetches use the pre-epoch MsgStoreFetch framing so they interoperate
// with peers that predate the epoch extension.
func (p *peerTier) fetchAndBackfill(ctx context.Context, addr string, vt engine.VersionedTenant) error {
	c, err := p.client(ctx, addr)
	if err != nil {
		return fmt.Errorf("gateway: peer %s: %w", addr, err)
	}
	start := time.Now()
	data, err := c.FetchArtifactEpoch(ctx, vt.Tenant, vt.Epoch)
	if err != nil {
		return fmt.Errorf("gateway: peer %s: %w", addr, err)
	}
	a, err := p.g.opts.Store.PutBytes(ctx, data)
	if err != nil {
		return fmt.Errorf("gateway: backfill from %s: %w", addr, err)
	}
	p.g.counters.peerFills.Add(1)
	p.g.counters.backfills.Add(1)
	obs.AddEvent(ctx, "gateway.peer_fill",
		obs.String("tenant", vt.String()), obs.String("peer", addr),
		obs.Int("bytes", int64(a.Size())), obs.String("wall", time.Since(start).String()))
	return nil
}

// lookupLocal answers from the (just backfilled) local store.
func (p *peerTier) lookupLocal(ctx context.Context, vt engine.VersionedTenant, item int) (bool, bool) {
	in, ok, err := p.g.opts.Store.LookupEpoch(ctx, vt, item)
	if err != nil || !ok {
		return false, false
	}
	return in, true
}

// pushToSuccessor proactively replicates a freshly materialized
// artifact to the tenant's ring successor, so the successor can serve
// the epoch from its local store with zero fetch-on-miss — the warm
// path for failover: when this gateway dies, queries landing on the
// successor find the artifact already resident. Fired from the store's
// SetOnPut hook; the transfer itself runs in a goroutine so Put never
// blocks on a peer. One hop only: the receiver installs via PutBytes,
// which never re-fires the hook, so a push cannot cascade around the
// ring.
//
//lint:coldpath one artifact transfer per local materialization, not query traffic
func (p *peerTier) pushToSuccessor(a *store.Artifact) {
	id := engine.TenantID{Instance: a.Instance, Seed: a.Seed}
	succ := p.ring.successor(id)
	if succ == "" {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
		defer cancel()
		c, err := p.client(ctx, succ)
		if err == nil {
			err = c.PushArtifact(ctx, a.Bytes())
		}
		if err != nil {
			p.g.counters.storePushErrors.Add(1)
			obs.AddWarnEvent(ctx, "gateway.store_push_error",
				obs.String("tenant", id.String()), obs.String("peer", succ),
				obs.String("error", err.Error()))
			return
		}
		p.g.counters.storePushes.Add(1)
	}()
}

// close releases the peer connections.
func (p *peerTier) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, c := range p.clients {
		_ = c.Close()
		delete(p.clients, addr)
	}
}

// storeTier answers item i for tenant t from the materialized tiers at
// the implicit epoch 0 — the exact pre-epoch behavior.
func (g *Gateway) storeTier(ctx context.Context, id engine.TenantID, label string, i int) (in, ok bool) {
	return g.storeTierEpoch(ctx, id, 0, label, i)
}

// storeTierEpoch answers item i for one (tenant, epoch) from the
// materialized tiers: the local artifact store first, then (on a store
// miss for a peer-owned key) the peer tier. ok=false falls the query
// through to the replica fleet — the tiers only ever short-circuit
// work, never change an answer, because an artifact bit and a replica
// answer are the same pure function C(I_e, r) evaluated in different
// places.
func (g *Gateway) storeTierEpoch(ctx context.Context, id engine.TenantID, ep engine.EpochID, label string, i int) (in, ok bool) {
	st := g.opts.Store
	if st == nil {
		return false, false
	}
	vt := engine.VersionedTenant{Tenant: id, Epoch: ep}
	in, ok, err := st.LookupEpoch(ctx, vt, i)
	if err != nil {
		// A corrupt or unreadable artifact must not take the query down:
		// replicas still answer. But it must be visible.
		obs.AddWarnEvent(ctx, "gateway.store_error",
			obs.String("tenant", label), obs.String("error", err.Error()))
		return false, false
	}
	if ok {
		g.counters.storeServes.Add(1)
		return in, true
	}
	if g.peerTier != nil {
		if in, ok = g.peerTier.fill(ctx, vt, i); ok {
			g.counters.storeServes.Add(1)
			return in, true
		}
	}
	return false, false
}

// ArtifactBytes implements cluster.ArtifactProvider: it serves this
// gateway's stored artifact for tenant id to fetching peers. Like the
// wire metrics scrape, the artifact endpoint is not API-key gated: it
// exposes derived solution bits (the same bits every query response
// carries), not instance data, and peers are cluster-internal.
func (g *Gateway) ArtifactBytes(ctx context.Context, id engine.TenantID) ([]byte, error) {
	return g.ArtifactBytesEpoch(ctx, id, 0)
}

// ArtifactBytesEpoch implements cluster.VersionedArtifactProvider: it
// serves one sealed epoch's stored artifact to fetching peers (epoch 0
// is the legacy artifact, byte-identical to the pre-epoch fetch).
func (g *Gateway) ArtifactBytesEpoch(ctx context.Context, id engine.TenantID, ep engine.EpochID) ([]byte, error) {
	st := g.opts.Store
	if st == nil {
		return nil, fmt.Errorf("gateway: no artifact store configured")
	}
	a, err := st.GetVersioned(ctx, engine.VersionedTenant{Tenant: id, Epoch: ep})
	if err != nil {
		return nil, err
	}
	g.counters.artifactsServed.Add(1)
	return a.Bytes(), nil
}

// AcceptArtifact implements cluster.ArtifactSink: it installs an
// artifact proactively pushed by a peer (MsgStorePush). Installation
// goes through PutBytes, which decodes and checksum-verifies the bytes
// and — critically — never fires the store's on-put hook, so accepting
// a push can never emit a further push: replication is exactly one
// hop, owner to successor.
func (g *Gateway) AcceptArtifact(ctx context.Context, data []byte) error {
	st := g.opts.Store
	if st == nil {
		return fmt.Errorf("gateway: no artifact store configured")
	}
	a, err := st.PutBytes(ctx, data)
	if err != nil {
		return err
	}
	g.counters.pushesAccepted.Add(1)
	obs.AddEvent(ctx, "gateway.store_push_accepted",
		obs.String("tenant", engine.TenantID{Instance: a.Instance, Seed: a.Seed}.String()),
		obs.Int("epoch", int64(a.Epoch)), obs.Int("bytes", int64(a.Size())))
	return nil
}

// WarmFromStore preloads tenant id's slice of the answer cache from
// the local artifact store: every answer bit of the artifact becomes a
// cache entry, with zero replica traffic. It returns the number of
// entries loaded. Combined with lcagateway -store, this is how a
// restarted gateway comes back warm without re-asking the fleet
// anything — the artifact is the cache's durable form.
func (g *Gateway) WarmFromStore(ctx context.Context, id engine.TenantID) (int, error) {
	if g.cache == nil {
		return 0, fmt.Errorf("gateway: warm from store: caching is disabled")
	}
	st := g.opts.Store
	if st == nil {
		return 0, fmt.Errorf("gateway: warm from store: no store configured")
	}
	t, ok := g.tenants[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", cluster.ErrUnknownTenant, id)
	}
	// Warm at the tenant's current epoch: after a rollover the live
	// traffic keys on the sealed epoch, so that is the artifact worth
	// paging into the cache (while the tenant is pre-churn this is the
	// legacy epoch-0 artifact, exactly as before).
	ep := t.currentEpoch()
	a, err := st.GetVersioned(ctx, engine.VersionedTenant{Tenant: id, Epoch: ep})
	if err != nil {
		return 0, fmt.Errorf("gateway: warm from store: %w", err)
	}
	answers := a.Answers()
	for i, in := range answers {
		if err := ctx.Err(); err != nil {
			return i, fmt.Errorf("gateway: warm from store: %w", err)
		}
		g.cache.put(t.key(ep, i), in)
	}
	g.counters.warmed.Add(int64(len(answers)))
	obs.AddEvent(ctx, "gateway.warm_from_store",
		obs.String("tenant", t.label), obs.Int("entries", int64(len(answers))))
	return len(answers), nil
}

// WarmAllFromStore warms every configured tenant that has an artifact
// in the local store, returning total entries loaded. Tenants without
// artifacts are skipped silently — absence is the normal cold state,
// not an error.
func (g *Gateway) WarmAllFromStore(ctx context.Context) (int, error) {
	total := 0
	for _, id := range g.Tenants() {
		if g.opts.Store == nil {
			continue
		}
		t := g.tenants[id]
		if !g.opts.Store.HasVersioned(engine.VersionedTenant{Tenant: id, Epoch: t.currentEpoch()}) {
			continue
		}
		n, err := g.WarmFromStore(ctx, id)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ensure the provider and sink seams stay implemented.
var (
	_ cluster.ArtifactProvider          = (*Gateway)(nil)
	_ cluster.VersionedArtifactProvider = (*Gateway)(nil)
	_ cluster.ArtifactSink              = (*Gateway)(nil)
)
