package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lcakp/internal/engine"
	"lcakp/internal/obs"
)

// errCoalescerClosed marks queries arriving after shutdown.
var errCoalescerClosed = errors.New("gateway: coalescer closed")

// pendingQuery is one point query parked in the coalescer.
type pendingQuery struct {
	item int
	// epoch is the rider's serving epoch: a concrete pinned epoch, or
	// epochLegacy for unpinned pre-churn queries (which ride epoch-less
	// frames). A batch frame names exactly one (tenant, serving epoch),
	// so the flush partitions riders by this value — queries for epochs
	// e and e+1 parked in the same window must not share a frame, and
	// neither may a pinned epoch-0 rider share a legacy frame.
	epoch engine.EpochID
	resp  chan pendingResult
	// span is the rider's active span (nil when untraced). The flush
	// runs under its own context, so the rider's span must travel with
	// the query for the coalesce_flush event to land on the right trace.
	span *obs.Span
}

// pendingResult is the answer delivered back to a parked query.
type pendingResult struct {
	answer bool
	err    error
}

// coalescer folds concurrent point queries into InSolutionBatch
// frames: the first query of a burst opens a window; everything
// arriving before it closes (or before the batch fills) rides the same
// RPC. A batch's answers are mutually consistent with certainty — the
// replica computes one rule for the whole frame — and the per-answer
// wire and rule-computation cost drops by the batch size.
type coalescer struct {
	window   time.Duration
	maxBatch int
	// flushTimeout bounds each flush RPC. Flushes run under their own
	// context: a batch aggregates queries from many callers, so no
	// single caller's context may cancel it for the others. A caller
	// whose context fires merely stops waiting for its answer.
	flushTimeout time.Duration
	call         func(context.Context, engine.EpochID, []int) ([]bool, error)
	counters     *counters

	queue chan pendingQuery

	// batchPool recycles pending-query slices between flushes. Flushes
	// run concurrently, so the buffer cannot live on the coalescer
	// itself; each flush returns its slice when done. Pooled batches
	// are zeroed before Put so parked resp channels are not pinned
	// past their flush. The item-index buffer is deliberately NOT
	// pooled: the router's hedged mode can return while a straggler
	// attempt goroutine is still marshaling the indices, so there is
	// no point at which the coalescer can prove the buffer is free.
	batchPool sync.Pool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// newCoalescer starts the collection loop.
func newCoalescer(window time.Duration, maxBatch int, flushTimeout time.Duration,
	call func(context.Context, engine.EpochID, []int) ([]bool, error), c *counters) *coalescer {
	co := &coalescer{
		window:       window,
		maxBatch:     maxBatch,
		flushTimeout: flushTimeout,
		call:         call,
		counters:     c,
		queue:        make(chan pendingQuery),
		stop:         make(chan struct{}),
	}
	co.batchPool.New = func() any {
		s := make([]pendingQuery, 0, maxBatch)
		return &s
	}
	co.wg.Add(1)
	go co.run()
	return co
}

// query submits one point query pinned to epoch ep and waits for its
// batch to answer.
func (co *coalescer) query(ctx context.Context, ep engine.EpochID, i int) (bool, error) {
	// The response channel cannot be pooled: a waiter that abandons it
	// on ctx expiry leaves the flush's late send buffered, and a reused
	// channel would hand that stale answer to the next query.
	pq := pendingQuery{item: i, epoch: ep, resp: make(chan pendingResult, 1), span: obs.ActiveSpanFromContext(ctx)} //lint:alloc one buffered rendezvous per coalesced miss; see above

	select {
	case co.queue <- pq:
	case <-ctx.Done():
		return false, fmt.Errorf("gateway: coalesce enqueue: %w", ctx.Err())
	case <-co.stop:
		return false, errCoalescerClosed
	}
	select {
	case res := <-pq.resp:
		return res.answer, res.err
	case <-ctx.Done():
		// The batch still completes for its other riders; only this
		// caller stops waiting (its buffered resp is dropped unread).
		return false, fmt.Errorf("gateway: coalesce wait: %w", ctx.Err())
	}
}

// run is the collection loop: open a window on the first query of a
// burst, flush on window expiry or a full batch.
func (co *coalescer) run() {
	defer co.wg.Done()
	bp := co.batchPool.Get().(*[]pendingQuery)
	batch := (*bp)[:0]
	var timer *time.Timer
	var timerC <-chan time.Time
	//lint:alloc allocated once per coalescer lifetime, not per query
	flush := func() {
		if timer != nil {
			timer.Stop()
		}
		timerC = nil
		pending, pendingBuf := batch, bp
		bp = co.batchPool.Get().(*[]pendingQuery)
		batch = (*bp)[:0]
		co.wg.Add(1)
		//lint:alloc one goroutine per batch flush, amortized across the batch's riders
		go func() {
			defer co.wg.Done()
			co.flush(pending)
			co.releaseBatch(pendingBuf, pending)
		}()
	}
	for {
		select {
		case <-co.stop:
			if len(batch) > 0 {
				flush()
			}
			// batch is empty here (flush swapped in a fresh buffer);
			// return it so shutdown does not strand a pooled slice.
			*bp = batch[:0]
			co.batchPool.Put(bp)
			return
		case pq := <-co.queue:
			batch = append(batch, pq)
			if len(batch) == 1 {
				timer = time.NewTimer(co.window)
				timerC = timer.C
			}
			if len(batch) >= co.maxBatch {
				flush()
			}
		case <-timerC:
			flush()
		}
	}
}

// flush partitions the parked queries by epoch and issues one batch
// RPC per distinct epoch. A window usually holds one epoch (churn is
// rare relative to queries), so the common case is a single frame; a
// window straddling a rollover sends one frame per epoch rather than
// ever mixing two sealed instances in one request.
func (co *coalescer) flush(batch []pendingQuery) {
	if len(batch) > 1 {
		co.counters.coalesced.Add(int64(len(batch)))
	}
	rest := batch
	for len(rest) > 0 {
		// Gather the first un-flushed epoch's riders, preserving order.
		// group compacts in place (writes trail reads); next is given
		// zero capacity so a rollover-straddling window copies its
		// stragglers out instead of aliasing the pooled batch buffer.
		ep := rest[0].epoch
		group := rest[:0]
		next := rest[len(rest):len(rest):len(rest)]
		for _, pq := range rest {
			if pq.epoch == ep {
				group = append(group, pq)
			} else {
				next = append(next, pq) //lint:alloc rollover-straddling windows only; the common single-epoch window appends nothing
			}
		}
		co.flushEpoch(ep, group)
		rest = next
	}
}

// flushEpoch issues one epoch-homogeneous batch RPC and distributes
// the answers.
func (co *coalescer) flushEpoch(ep engine.EpochID, batch []pendingQuery) {
	// The index buffer must be freshly allocated, not pooled: co.call
	// routes through the router, whose hedged mode may return (on
	// ctx.Done or a first error) while an outstanding attempt goroutine
	// still reads the slice to marshal its request frame. Reusing the
	// buffer after co.call returns would race with that straggler.
	indices := make([]int, 0, len(batch)) //lint:alloc one exactly-sized index slice per batch RPC; hedged attempts may outlive the call, so it cannot be pooled
	for _, pq := range batch {
		indices = append(indices, pq.item)
	}
	ctx, cancel := context.WithTimeout(context.Background(), co.flushTimeout)
	defer cancel()
	answers, err := co.call(ctx, ep, indices)
	for k, pq := range batch {
		if pq.span != nil {
			// Stamp the rider's trace with the flush it rode: the batch
			// size explains the amortized wire cost (Def 2.2 splits one
			// RPC across len(batch) riders). Safe even if the rider's
			// span already ended — Event on an ended span is a no-op.
			//lint:alloc traced riders only: two attrs per coalesced miss, against a shared RPC
			pq.span.Event("gateway.coalesce_flush",
				obs.Int("batch", int64(len(batch))), obs.Int("item", int64(pq.item)))
		}
		res := pendingResult{err: err}
		if err == nil {
			res.answer = answers[k]
		}
		pq.resp <- res
	}
}

// releaseBatch zeroes a flushed batch — dropping the riders' resp
// channel references so the pool does not pin them — and returns its
// backing array for the next window.
func (co *coalescer) releaseBatch(bp *[]pendingQuery, used []pendingQuery) {
	for k := range used {
		used[k] = pendingQuery{}
	}
	*bp = used[:0]
	co.batchPool.Put(bp)
}

// close stops the loop after flushing any parked queries and waits for
// in-flight flushes.
func (co *coalescer) close() {
	co.stopOnce.Do(func() { close(co.stop) })
	co.wg.Wait()
}
