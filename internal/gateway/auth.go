package gateway

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lcakp/internal/engine"
)

// authEntry is one API key's grant: every tenant (all) or an explicit
// set.
type authEntry struct {
	hash    [sha256.Size]byte
	all     bool
	tenants map[engine.TenantID]struct{}
}

// Authorizer maps API keys to tenant grants. Keys are stored and
// compared as SHA-256 digests with a constant-time comparison that
// always scans every entry, so neither the match position nor a
// near-miss prefix leaks through timing.
type Authorizer struct {
	entries []authEntry
}

// NewAuthorizer builds an empty authorizer; see Grant and
// LoadAPIKeys.
func NewAuthorizer() *Authorizer { return &Authorizer{} }

// Grant authorizes key for the given tenants; an empty tenant list
// grants every tenant (the wildcard).
func (a *Authorizer) Grant(key string, tenants ...engine.TenantID) {
	e := authEntry{hash: sha256.Sum256([]byte(key))}
	if len(tenants) == 0 {
		e.all = true
	} else {
		e.tenants = make(map[engine.TenantID]struct{}, len(tenants))
		for _, id := range tenants {
			e.tenants[id] = struct{}{}
		}
	}
	a.entries = append(a.entries, e)
}

// Len reports how many keys are loaded.
func (a *Authorizer) Len() int { return len(a.entries) }

// Allow reports whether key is authorized for tenant id. The digest
// comparison runs over every entry unconditionally.
func (a *Authorizer) Allow(key []byte, id engine.TenantID) bool {
	if len(key) == 0 {
		return false
	}
	sum := sha256.Sum256(key)
	allowed := 0
	for i := range a.entries {
		e := &a.entries[i]
		match := subtle.ConstantTimeCompare(e.hash[:], sum[:])
		covers := 0
		if e.all {
			covers = 1
		} else if _, ok := e.tenants[id]; ok {
			covers = 1
		}
		allowed |= match & covers
	}
	return allowed == 1
}

// ParseAPIKeys reads an API-key ACL in the lcagateway file format: one
// key per line,
//
//	<key> *                                  # key may query every tenant
//	<key> <instance>:<seed> [<instance>:<seed> ...]
//
// with #-comments and blank lines ignored. Keys are at most 255 bytes
// (the wire's auth-extension bound).
func ParseAPIKeys(r io.Reader) (*Authorizer, error) {
	a := NewAuthorizer()
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gateway: api keys line %d: want \"<key> *\" or \"<key> <instance>:<seed>...\"", lineNo)
		}
		key := fields[0]
		if len(key) > 255 {
			return nil, fmt.Errorf("gateway: api keys line %d: key of %d bytes (max 255)", lineNo, len(key))
		}
		if len(fields) == 2 && fields[1] == "*" {
			a.Grant(key)
			continue
		}
		tenants := make([]engine.TenantID, 0, len(fields)-1)
		for _, grant := range fields[1:] {
			instStr, seedStr, ok := strings.Cut(grant, ":")
			if !ok {
				return nil, fmt.Errorf("gateway: api keys line %d: grant %q is not <instance>:<seed>", lineNo, grant)
			}
			inst, err := strconv.ParseUint(instStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gateway: api keys line %d: instance %q: %w", lineNo, instStr, err)
			}
			seed, err := strconv.ParseUint(seedStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("gateway: api keys line %d: seed %q: %w", lineNo, seedStr, err)
			}
			tenants = append(tenants, engine.TenantID{Instance: inst, Seed: seed})
		}
		a.Grant(key, tenants...)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("gateway: read api keys: %w", err)
	}
	return a, nil
}

// LoadAPIKeys reads an API-key ACL file (see ParseAPIKeys).
func LoadAPIKeys(path string) (*Authorizer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: open api keys: %w", err)
	}
	defer f.Close()
	return ParseAPIKeys(f)
}
