package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/engine"
	"lcakp/internal/obs"
)

// Admission errors. They surface to wire clients as remote errors
// carrying these strings.
var (
	// ErrUnauthorized rejects a frame whose API key is missing, unknown,
	// or not granted the addressed tenant.
	ErrUnauthorized = errors.New("gateway: unauthorized")
	// ErrQuotaExceeded rejects a query that would overdraw its tenant's
	// token bucket.
	ErrQuotaExceeded = errors.New("gateway: quota exceeded")
)

// TenantOptions configures one explicitly served tenant.
type TenantOptions struct {
	// Instance and Seed name the tenant's solution C(I, r).
	Instance uint64
	Seed     uint64
	// RateLimit is the tenant's admission rate in queries/second (each
	// batch index counts as one query); 0 means unlimited.
	RateLimit float64
	// Burst caps the token bucket (0 selects one second of RateLimit,
	// minimum 1).
	Burst int
}

// tenantCounters is one tenant's slice of the serving accounting,
// exposed per tenant by RegisterMetrics and read by TenantMetrics.
type tenantCounters struct {
	queries      obs.Counter
	batchQueries obs.Counter
	cacheHits    obs.Counter
	cacheMisses  obs.Counter
	quotaRejects obs.Counter
	// epochQueries counts epoch-addressed queries — explicitly pinned,
	// or unpinned after the tenant rolled past epoch 0 — splitting the
	// tenant's quota consumption into its pre-churn and epoch-versioned
	// shares.
	epochQueries obs.Counter
}

// TenantMetrics is a snapshot of one tenant's counters.
type TenantMetrics struct {
	Queries, BatchQueries  int64
	CacheHits, CacheMisses int64
	QuotaRejects           int64
	// Epoch is the tenant's current serving epoch; EpochQueries counts
	// the queries (point and batch indices alike) served at sealed
	// epochs — the epoch-scoped slice of the quota accounting.
	Epoch        uint64
	EpochQueries int64
}

// tenant is one served namespace: its share of the answer cache (via
// key prefix), its own coalescer (a batch frame carries exactly one
// tenant), its quota, and its counters. It implements cluster.Backend,
// so resolving a frame's tenant yields the thing that answers it.
//
// The shared machinery — pool, breakers, router, cache shards — is the
// gateway's: replicas are multi-tenant, so connections and health are
// per replica, not per tenant, and cache keys already carry
// (Instance, Seed). What must not be shared is exactly what is not:
// wire namespacing, admission, and accounting.
type tenant struct {
	g  *Gateway
	id engine.TenantID
	// label is id.String() computed once at construction, so event and
	// exemplar attribution never formats on a serving path.
	label string
	// wireID is the namespace stamped on outgoing frames: nil for the
	// implicit default tenant (untenanted frames, byte-identical to
	// pre-tenancy builds against old replicas), the tenant's own ID for
	// explicitly configured tenants.
	wireID *engine.TenantID
	// epoch is the tenant's current serving epoch, advanced by
	// Gateway.SetTenantEpoch when a rollover completes. While it is 0
	// (a tenant that never churned) every query takes the exact
	// pre-epoch code path: untagged cache keys, epoch-less frames,
	// legacy store addresses — byte-identical to a pre-epoch build.
	epoch atomic.Uint64
	coal  *coalescer // nil when coalescing is disabled
	quota *tokenBucket
	c     tenantCounters
}

var _ cluster.Backend = (*tenant)(nil)

// newTenant builds one tenant's serving state.
func (g *Gateway) newTenant(id engine.TenantID, tenanted bool, to TenantOptions) *tenant {
	t := &tenant{g: g, id: id, label: id.String()}
	if tenanted {
		idCopy := id
		t.wireID = &idCopy
	}
	if to.RateLimit > 0 {
		t.quota = newTokenBucket(to.RateLimit, to.Burst)
	}
	if g.opts.BatchWindow > 0 {
		t.coal = newCoalescer(g.opts.BatchWindow, g.opts.MaxBatch, g.opts.RPCTimeout, t.routerCall, &g.counters)
	}
	return t
}

// epochLegacy is the tenant-internal serving-epoch marker for an
// unpinned query of a never-churned tenant: legacy epoch-less wire
// framing, epoch-0 cache keys and store addresses — the exact
// pre-epoch path. It is distinct from a concrete epoch-0 PIN, which
// must ride a pinned frame: a pinned query names its instance version
// on the wire, while a legacy frame asks the replica for whatever is
// current. The two only coincide while every replica's current epoch
// is still 0. engine.EpochCurrent is safe to reuse as the marker
// because resolveEpoch eliminates the sentinel before any serving code
// runs.
const epochLegacy = engine.EpochCurrent

// storeEpochOf maps the internal serving-epoch marker to the concrete
// epoch that cache keys and artifact addresses use.
func storeEpochOf(ep engine.EpochID) engine.EpochID {
	if ep == epochLegacy {
		return 0
	}
	return ep
}

// routerCall fans the tenant's batch out to the fleet under its wire
// namespace at serving epoch ep. epochLegacy keeps the exact pre-epoch
// framing (no epoch header at all); any concrete epoch — 0 included —
// stamps every frame (first try, retries, hedges) with the same pinned
// epoch, so failover can never slide a query onto a different instance
// version mid-rollover.
func (t *tenant) routerCall(ctx context.Context, ep engine.EpochID, indices []int) ([]bool, error) {
	if ep == epochLegacy {
		return t.g.router.callTenant(ctx, t.wireID, indices)
	}
	//lint:alloc epoch-pinned miss path: the pin escapes into the router's (possibly hedged) attempts, priced against a wire RPC
	return t.g.router.callTenantEpoch(ctx, t.wireID, &ep, indices)
}

// key builds the cache key for item i under this tenant at serving
// epoch ep. epochLegacy and a concrete epoch-0 pin share the epoch-0
// key — they are the same solution C(I_0, r) — and it is the exact
// pre-epoch key, so a never-churned tenant's cache entries are
// unchanged. Sealed epochs get disjoint keys — the cache-isolation
// property: no entry written at epoch e can ever answer a query for
// epoch e'.
func (t *tenant) key(ep engine.EpochID, i int) Key {
	return Key{Instance: t.id.Instance, Seed: t.id.Seed, Epoch: uint64(storeEpochOf(ep)), Item: i}
}

// currentEpoch is the tenant's current epoch as set by SetTenantEpoch.
func (t *tenant) currentEpoch() engine.EpochID {
	return engine.EpochID(t.epoch.Load())
}

// servingEpoch is the serving-epoch marker for an unpinned query:
// epochLegacy while the tenant never churned (byte-identical pre-epoch
// behavior), the concrete current epoch after a rollover (pinned
// frames, so one query's retries and hedges all name the same sealed
// instance even while the fleet is mid-rollover).
func (t *tenant) servingEpoch() engine.EpochID {
	if ep := t.currentEpoch(); ep != 0 {
		return ep
	}
	return epochLegacy
}

// resolveEpoch maps the engine.EpochCurrent sentinel to the tenant's
// current epoch; concrete pins pass through.
func (t *tenant) resolveEpoch(ep engine.EpochID) engine.EpochID {
	if ep == engine.EpochCurrent {
		return t.currentEpoch()
	}
	return ep
}

// admit charges n queries against the tenant's quota. Charging happens
// at admission, before the cache: the quota meters the tenant's query
// budget (Definition 2.2's resource), and a cached answer still
// consumed that budget when it was first computed on the tenant's
// behalf.
func (t *tenant) admit(ctx context.Context, n int) error {
	if t.quota == nil || t.quota.take(n) {
		return nil
	}
	t.g.counters.quotaRejects.Add(1)
	t.c.quotaRejects.Add(1)
	//lint:alloc rejection path: the event attrs ride an error return, not the admitted flow
	obs.AddWarnEvent(ctx, "gateway.quota_reject",
		obs.String("tenant", t.label), obs.Int("charged", int64(n)))
	return fmt.Errorf("%w: tenant %s", ErrQuotaExceeded, t.id)
}

// fetchOne resolves one item on the cache-miss path, through the
// serving tiers in cost order: the materialized artifact tier first
// (local store, then peer-fill — see Gateway.storeTier), then the
// replica fleet via the coalescer (when enabled) or a direct
// single-index batch call. Fleet fetches record latency; a traced
// fetch leaves its trace ID as the latency bucket's exemplar and
// stamps a cache_fill event on the active span, so a tail bucket in
// /metrics names a replayable miss.
func (t *tenant) fetchOne(ctx context.Context, ep engine.EpochID, i int) (answer bool, err error) {
	if answer, ok := t.g.storeTierEpoch(ctx, t.id, storeEpochOf(ep), t.label, i); ok {
		return answer, nil
	}
	start := time.Now()
	if t.coal != nil {
		answer, err = t.coal.query(ctx, ep, i)
	} else {
		var answers []bool
		//lint:alloc miss path: one single-index batch per uncoalesced fetch, against a wire round trip
		if answers, err = t.routerCall(ctx, ep, []int{i}); err == nil {
			answer = answers[0]
		}
	}
	d := time.Since(start)
	t.g.lat.ObserveExemplar(d, obs.TraceIDFromContext(ctx), t.label)
	if span := obs.ActiveSpanFromContext(ctx); span != nil && err == nil {
		//lint:alloc traced miss path only: attrs priced against a wire round trip
		span.Event("gateway.cache_fill",
			obs.String("tenant", t.label), obs.Int("item", int64(i)))
	}
	return answer, err
}

// InSolution answers one membership query at the tenant's current
// epoch: admission, cache, then a single-flight-deduplicated fetch
// from the fleet. Latency is observed on the fetch path only — a cache
// hit reads no clock, keeping the hit path's observability overhead at
// effectively zero.
func (t *tenant) InSolution(ctx context.Context, i int) (bool, error) {
	return t.inSolutionAt(ctx, t.servingEpoch(), i)
}

// InSolutionEpoch is InSolution pinned to one sealed epoch (or the
// engine.EpochCurrent sentinel). The pin travels the whole path —
// cache key, store address, coalescer partition, wire frame — so the
// answer is a bit of exactly C(I_ep, r) no matter which tier or
// replica produced it.
func (t *tenant) InSolutionEpoch(ctx context.Context, ep engine.EpochID, i int) (bool, error) {
	return t.inSolutionAt(ctx, t.resolveEpoch(ep), i)
}

// inSolutionAt serves one point query at a resolved epoch.
func (t *tenant) inSolutionAt(ctx context.Context, ep engine.EpochID, i int) (bool, error) {
	if t.g.opts.Tracer != nil {
		var span *obs.Span
		ctx, span = t.g.opts.Tracer.StartSpan(ctx, "gateway.query")
		defer span.End()
	}
	if err := t.admit(ctx, 1); err != nil {
		return false, err
	}
	t.g.counters.queries.Add(1)
	t.c.queries.Add(1)
	if ep != epochLegacy {
		t.c.epochQueries.Add(1)
	}
	if t.g.cache == nil {
		return t.fetchOne(ctx, ep, i)
	}
	//lint:alloc stays on the stack: do only calls fn, never retains it — cached hit measures 0 allocs/op
	answer, oc, err := t.g.cache.do(ctx, t.key(ep, i), func() (bool, error) {
		return t.fetchOne(ctx, ep, i)
	})
	switch oc {
	case outcomeHit:
		t.g.counters.cacheHits.Add(1)
		t.c.cacheHits.Add(1)
	case outcomeShared:
		t.g.counters.cacheMisses.Add(1)
		t.c.cacheMisses.Add(1)
		t.g.counters.flightsShared.Add(1)
	default:
		t.g.counters.cacheMisses.Add(1)
		t.c.cacheMisses.Add(1)
	}
	return answer, err
}

// InSolutionBatch answers a batch at the tenant's current epoch,
// serving what it can from the cache and fetching the rest in one
// frame under the tenant's namespace. Admission charges the whole
// batch up front (all-or-nothing).
func (t *tenant) InSolutionBatch(ctx context.Context, indices []int) ([]bool, error) {
	return t.inSolutionBatchAt(ctx, t.servingEpoch(), indices)
}

// InSolutionBatchEpoch is InSolutionBatch pinned to one sealed epoch
// (or the engine.EpochCurrent sentinel).
func (t *tenant) InSolutionBatchEpoch(ctx context.Context, ep engine.EpochID, indices []int) ([]bool, error) {
	return t.inSolutionBatchAt(ctx, t.resolveEpoch(ep), indices)
}

// inSolutionBatchAt serves one batch at a resolved epoch.
func (t *tenant) inSolutionBatchAt(ctx context.Context, ep engine.EpochID, indices []int) ([]bool, error) {
	if t.g.opts.Tracer != nil {
		var span *obs.Span
		ctx, span = t.g.opts.Tracer.StartSpan(ctx, "gateway.batch")
		defer span.End()
	}
	if err := t.admit(ctx, len(indices)); err != nil {
		return nil, err
	}
	t.g.counters.batchQueries.Add(1)
	t.c.batchQueries.Add(1)
	if ep != epochLegacy {
		t.c.epochQueries.Add(int64(len(indices)))
	}
	if len(indices) == 0 {
		return nil, nil
	}
	if t.g.cache == nil {
		return t.routerCall(ctx, ep, indices)
	}

	answers := make([]bool, len(indices)) //lint:alloc escapes to the caller, which owns the answers
	// positions gathers where each still-unknown item occurs (an item
	// may repeat within a batch; it is fetched once). It is allocated
	// lazily on the first miss: an all-hit batch allocates only the
	// answer slice.
	var positions map[int][]int
	var missing []int
	for pos, item := range indices {
		if hits, seen := positions[item]; seen {
			positions[item] = append(hits, pos) //lint:alloc per-duplicate bookkeeping, O(misses) not O(batch)
			continue
		}
		if answer, ok := t.g.cache.get(t.key(ep, item)); ok {
			t.g.counters.cacheHits.Add(1)
			t.c.cacheHits.Add(1)
			answers[pos] = answer
			continue
		}
		t.g.counters.cacheMisses.Add(1)
		t.c.cacheMisses.Add(1)
		if positions == nil {
			positions, missing = make(map[int][]int, len(indices)), make([]int, 0, len(indices)) //lint:alloc miss-path bookkeeping, deferred until the first cache miss
		}
		positions[item] = append(positions[item], pos) //lint:alloc one first-occurrence slot per missed item, O(misses)
		missing = append(missing, item)
	}
	if len(missing) == 0 {
		return answers, nil
	}
	// The artifact tier thins the fleet fetch (often to nothing):
	// missed items a local or peer artifact covers are answered and
	// cached here, and only the remainder rides the batch frame.
	if t.g.opts.Store != nil {
		remaining := missing[:0]
		for _, item := range missing {
			if answer, ok := t.g.storeTierEpoch(ctx, t.id, storeEpochOf(ep), t.label, item); ok {
				t.g.cache.put(t.key(ep, item), answer)
				for _, pos := range positions[item] {
					answers[pos] = answer
				}
				continue
			}
			remaining = append(remaining, item)
		}
		if missing = remaining; len(missing) == 0 {
			return answers, nil
		}
	}
	fetched, err := t.routerCall(ctx, ep, missing)
	if err != nil {
		return nil, err
	}
	for k, item := range missing {
		t.g.cache.put(t.key(ep, item), fetched[k])
		for _, pos := range positions[item] {
			answers[pos] = fetched[k]
		}
	}
	return answers, nil
}

// warm preloads the answer cache with the given items under this
// tenant's keys, fetching the not-yet-resident ones in MaxBatch-sized
// frames. Warming bypasses the quota: it is an operator action, not
// tenant traffic.
//
// A chunk that fails does not abort the warm-up: remaining chunks
// still fetch (a mid-warm replica death should cost one batch, not the
// whole warm set), and the partial failure surfaces as a *WarmError
// carrying exact warmed/failed counts instead of being visible only as
// a smaller return count. Context cancellation is the exception — it
// stops the loop immediately, since every later chunk would fail the
// same way. Each warmed batch stamps a gateway.cache_fill span event,
// so a traced warm-up shows its fill pattern chunk by chunk.
func (t *tenant) warm(ctx context.Context, items []int) (int, error) {
	if t.g.cache == nil {
		return 0, fmt.Errorf("gateway: warm: caching is disabled")
	}
	// Warm at the epoch current when the warm-up starts; a rollover
	// mid-warm leaves the tail warming the old (still-pinnable) epoch.
	ep := t.servingEpoch()
	// Dedup and drop already-resident items before spending any RPCs.
	seen := make(map[int]struct{}, len(items))
	missing := make([]int, 0, len(items))
	for _, item := range items {
		if _, dup := seen[item]; dup {
			continue
		}
		seen[item] = struct{}{}
		if _, resident := t.g.cache.get(t.key(ep, item)); resident {
			continue
		}
		missing = append(missing, item)
	}
	warmed, failed, failedChunks := 0, 0, 0
	var firstErr error
	for len(missing) > 0 {
		chunk := missing
		if len(chunk) > t.g.opts.MaxBatch {
			chunk = chunk[:t.g.opts.MaxBatch]
		}
		missing = missing[len(chunk):]
		fetched, err := t.routerCall(ctx, ep, chunk)
		if err != nil {
			failed += len(chunk)
			failedChunks++
			if firstErr == nil {
				firstErr = err
			}
			obs.AddWarnEvent(ctx, "gateway.warm_chunk_failed",
				obs.String("tenant", t.label), obs.Int("batch", int64(len(chunk))),
				obs.String("error", err.Error()))
			if ctx.Err() != nil {
				// The context is dead: every remaining chunk would fail
				// identically. Charge them to the failure count so the
				// error still reports the true shortfall.
				failed += len(missing)
				break
			}
			continue
		}
		for k, item := range chunk {
			t.g.cache.put(t.key(ep, item), fetched[k])
		}
		warmed += len(chunk)
		t.g.counters.warmed.Add(int64(len(chunk)))
		obs.AddEvent(ctx, "gateway.cache_fill",
			obs.String("tenant", t.label), obs.Int("batch", int64(len(chunk))),
			obs.String("source", "warm"))
	}
	if firstErr != nil {
		return warmed, &WarmError{Tenant: t.id, Warmed: warmed, Failed: failed,
			FailedChunks: failedChunks, Err: firstErr}
	}
	return warmed, nil
}

// WarmError reports a partially (or wholly) failed warm-up: how many
// items were fetched and cached, how many were not, and the first
// underlying failure. Callers that only care whether anything failed
// can treat it as an ordinary error; operators get exact counts
// instead of inferring the shortfall from the returned total.
type WarmError struct {
	// Tenant is the warmed namespace.
	Tenant engine.TenantID
	// Warmed and Failed count items; FailedChunks counts batch frames
	// that errored.
	Warmed, Failed, FailedChunks int
	// Err is the first chunk failure, preserved for errors.Is/As (a
	// cancellation mid-warm surfaces here as the context error).
	Err error
}

func (e *WarmError) Error() string {
	return fmt.Sprintf("gateway: warm tenant %s: %d of %d items failed (%d chunks): %v",
		e.Tenant, e.Failed, e.Warmed+e.Failed, e.FailedChunks, e.Err)
}

// Unwrap exposes the first underlying failure.
func (e *WarmError) Unwrap() error { return e.Err }

// metrics snapshots the tenant's counters.
func (t *tenant) metrics() TenantMetrics {
	return TenantMetrics{
		Queries:      t.c.queries.Value(),
		BatchQueries: t.c.batchQueries.Value(),
		CacheHits:    t.c.cacheHits.Value(),
		CacheMisses:  t.c.cacheMisses.Value(),
		QuotaRejects: t.c.quotaRejects.Value(),
		Epoch:        t.epoch.Load(),
		EpochQueries: t.c.epochQueries.Value(),
	}
}
