package gateway

import (
	"context"
	"sync"
	"testing"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/core"
	"lcakp/internal/engine"
	"lcakp/internal/oracle"
	"lcakp/internal/store"
	"lcakp/internal/workload"
)

// epochParams are the LCA parameters of the epoch tests. ε = 0.25 is
// deliberate: the planted-large workload plants items carrying ~8% of
// total profit each, above ε² = 0.0625, so every epoch's solution is
// non-empty and moves when churn re-seeds the instance. (The uniform
// family normalizes every profit to ~1/n — below any realistic ε² —
// leaving the solution empty and identical across epochs, which would
// let a cross-epoch cache bug pass undetected.)
var epochParams = core.Params{Epsilon: 0.25, Seed: testParams.Seed}

// epochOracle generates the deterministic instance of one epoch of the
// default test tenant. Sealed epochs perturb the workload seed,
// modeling churn that visibly changes the solution.
func epochOracle(t testing.TB, n int, ep uint64) *oracle.SliceOracle {
	t.Helper()
	gen, err := workload.Generate(workload.Spec{Name: "planted-large", N: n, Seed: 17 + ep*1000003, PlantedLarge: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	acc, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	return acc
}

// epochBaseline computes the reference answers of one epoch locally.
func epochBaseline(t testing.TB, n int, ep uint64) []bool {
	t.Helper()
	lca, err := core.NewLCAKP(epochOracle(t, n, ep), epochParams)
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	out := make([]bool, n)
	for i := range out {
		in, err := lca.Query(context.Background(), i)
		if err != nil {
			t.Fatalf("Query(%d): %v", i, err)
		}
		out[i] = in
	}
	return out
}

// epochFleet starts k epoch-aware replica servers: multi-tenant
// servers over versioned tables whose factory derives any epoch of the
// default tenant on demand, with untenanted frames routed to it.
func epochFleet(t testing.TB, n, k int) (addrs []string, servers []*cluster.MultiLCAServer, tables []*engine.TenantTable) {
	t.Helper()
	id := engine.TenantID{Instance: 0, Seed: epochParams.Seed}
	for r := 0; r < k; r++ {
		factory := func(_ context.Context, vt engine.VersionedTenant) (engine.TenantState, error) {
			lca, err := core.NewLCAKP(epochOracle(t, n, uint64(vt.Epoch)),
				core.Params{Epsilon: epochParams.Epsilon, Seed: vt.Tenant.Seed})
			if err != nil {
				return engine.TenantState{}, err
			}
			return engine.TenantState{Engine: engine.New(lca)}, nil
		}
		table := engine.NewVersionedTenantTable(factory, 8)
		t.Cleanup(func() { table.Close() })
		srv, err := cluster.NewMultiLCAServer("127.0.0.1:0", table)
		if err != nil {
			t.Fatalf("NewMultiLCAServer: %v", err)
		}
		srv.SetDefaultTenant(id)
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		tables = append(tables, table)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, servers, tables
}

// sealEpoch advances the fleet and the gateway to epoch ep, in the
// rollout order that leaves no skew window: the gateway first (its
// unpinned queries switch to pinned epoch-ep frames, which replicas
// can derive on demand regardless of their own current epoch), the
// replicas' current epoch after (for raw epoch-less clients).
func sealEpoch(t testing.TB, gw *Gateway, tables []*engine.TenantTable, ep engine.EpochID) {
	t.Helper()
	id := engine.TenantID{Instance: 0, Seed: epochParams.Seed}
	if err := gw.SetTenantEpoch(id, ep); err != nil {
		t.Fatalf("SetTenantEpoch(%d): %v", ep, err)
	}
	for _, table := range tables {
		if err := table.SetCurrentEpoch(id, ep); err != nil {
			t.Fatalf("SetCurrentEpoch(%d): %v", ep, err)
		}
	}
}

// TestEpochE2EPinnedBitIdentityAcrossRollover is the dynamic-instance
// acceptance run (criterion a): a query pinned to epoch e returns
// bit-identical answers before, during, and after epoch e+1 is sealed
// — and still after a replica is killed mid-sequence, because the pin
// rides every retry and failover frame. Unpinned queries follow the
// tenant's current epoch.
func TestEpochE2EPinnedBitIdentityAcrossRollover(t *testing.T) {
	const n = 96
	addrs, servers, tables := epochFleet(t, n, 2)
	want0, want1 := epochBaseline(t, n, 0), epochBaseline(t, n, 1)
	differs := false
	for i := range want0 {
		if want0[i] != want1[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("epochs 0 and 1 answer identically; churn model broken, the test would prove nothing")
	}
	ctx := context.Background()
	id := engine.TenantID{Instance: 0, Seed: epochParams.Seed}

	gw, err := New(Options{Replicas: addrs, Seed: epochParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	// Before sealing: unpinned and pinned-to-0 agree with the pre-churn
	// baseline.
	for i := 0; i < n; i++ {
		if got, err := gw.InSolution(ctx, i); err != nil || got != want0[i] {
			t.Fatalf("pre-seal unpinned item %d = (%v, %v), want %v", i, got, err, want0[i])
		}
		if got, err := gw.InSolutionEpoch(ctx, 0, i); err != nil || got != want0[i] {
			t.Fatalf("pre-seal pinned-0 item %d = (%v, %v), want %v", i, got, err, want0[i])
		}
	}

	sealEpoch(t, gw, tables, 1)
	if ep, ok := gw.TenantEpoch(id); !ok || ep != 1 {
		t.Fatalf("TenantEpoch = (%d, %v), want (1, true)", ep, ok)
	}

	// After sealing: pinned epoch 0 is unchanged — through the warm
	// cache on gw, and through the wire on a cold gateway that never
	// saw epoch 0 served (its pinned frames must make the replicas
	// re-derive the old epoch).
	gwCold, err := New(Options{Replicas: addrs, Seed: epochParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New(cold): %v", err)
	}
	defer gwCold.Close()
	sealEpoch(t, gwCold, tables, 1)
	batch0 := make([]int, n)
	for i := range batch0 {
		batch0[i] = i
	}
	coldPinned, err := gwCold.InSolutionBatchEpoch(ctx, 0, batch0)
	if err != nil {
		t.Fatalf("cold pinned-0 batch: %v", err)
	}
	for i := 0; i < n; i++ {
		if got, err := gw.InSolutionEpoch(ctx, 0, i); err != nil || got != want0[i] {
			t.Fatalf("post-seal pinned-0 item %d = (%v, %v), want %v", i, got, err, want0[i])
		}
		if coldPinned[i] != want0[i] {
			t.Fatalf("post-seal cold pinned-0 item %d = %v, want %v", i, coldPinned[i], want0[i])
		}
		// Unpinned, pinned-1, and the current-epoch sentinel all serve
		// the sealed epoch.
		if got, err := gw.InSolution(ctx, i); err != nil || got != want1[i] {
			t.Fatalf("post-seal unpinned item %d = (%v, %v), want %v", i, got, err, want1[i])
		}
		if got, err := gw.InSolutionEpoch(ctx, 1, i); err != nil || got != want1[i] {
			t.Fatalf("post-seal pinned-1 item %d = (%v, %v), want %v", i, got, err, want1[i])
		}
		if got, err := gw.InSolutionEpoch(ctx, engine.EpochCurrent, i); err != nil || got != want1[i] {
			t.Fatalf("post-seal sentinel item %d = (%v, %v), want %v", i, got, err, want1[i])
		}
	}

	// Kill a replica mid-sequence. A third gateway (cold cache, so
	// every query reaches the wire) must still serve pinned epoch 0
	// bit-identically through the survivor.
	servers[0].Close()
	gwKill, err := New(Options{Replicas: addrs, Seed: epochParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New(kill): %v", err)
	}
	defer gwKill.Close()
	sealEpoch(t, gwKill, tables[1:], 1)
	killPinned, err := gwKill.InSolutionBatchEpoch(ctx, 0, batch0)
	if err != nil {
		t.Fatalf("pinned-0 batch after replica kill: %v", err)
	}
	for i, got := range killPinned {
		if got != want0[i] {
			t.Fatalf("after replica kill: pinned-0 item %d = %v, want %v", i, got, want0[i])
		}
	}
	if got, err := gwKill.InSolution(ctx, 3); err != nil || got != want1[3] {
		t.Fatalf("after replica kill: unpinned item 3 = (%v, %v), want %v", got, err, want1[3])
	}
}

// TestEpochCacheIsolationConcurrent pins cache isolation under
// concurrency (run under -race in CI): a gateway serving epochs 0 and
// 1 simultaneously must never return a cross-epoch cache hit — every
// answer matches its own epoch's baseline even while both epochs churn
// through the same shards, coalescer, and single-flight tables.
func TestEpochCacheIsolationConcurrent(t *testing.T) {
	const n = 64
	addrs, _, tables := epochFleet(t, n, 1)
	want0, want1 := epochBaseline(t, n, 0), epochBaseline(t, n, 1)
	sane := false
	for i := range want0 {
		if want0[i] != want1[i] {
			sane = true
			break
		}
	}
	if !sane {
		t.Fatal("epochs 0 and 1 answer identically; cross-epoch contamination would be invisible")
	}
	ctx := context.Background()

	gw, err := New(Options{
		Replicas:    addrs,
		Seed:        epochParams.Seed,
		HedgeDelay:  -1,
		BatchWindow: 100 * time.Microsecond, // coalesce, so rollover-straddling windows partition by epoch
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	sealEpoch(t, gw, tables, 1)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Half the workers pin the old epoch, half ride the
				// current one; both hammer the same items.
				if w%2 == 0 {
					got, err := gw.InSolutionEpoch(ctx, 0, i)
					if err != nil {
						errs <- err
						return
					}
					if got != want0[i] {
						t.Errorf("worker %d: pinned-0 item %d = %v, want %v (cross-epoch contamination)", w, i, got, want0[i])
					}
				} else {
					got, err := gw.InSolution(ctx, i)
					if err != nil {
						errs <- err
						return
					}
					if got != want1[i] {
						t.Errorf("worker %d: epoch-1 item %d = %v, want %v (cross-epoch contamination)", w, i, got, want1[i])
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent epoch query: %v", err)
	}

	id := engine.TenantID{Instance: 0, Seed: epochParams.Seed}
	tm, ok := gw.TenantMetrics(id)
	if !ok {
		t.Fatal("TenantMetrics: default tenant missing")
	}
	if tm.Epoch != 1 {
		t.Errorf("TenantMetrics.Epoch = %d, want 1", tm.Epoch)
	}
	if tm.EpochQueries == 0 {
		t.Error("TenantMetrics.EpochQueries = 0, want > 0 (every query here was epoch-addressed)")
	}
}

// materializeEpochArtifact materializes one epoch of the default test
// tenant into an artifact.
func materializeEpochArtifact(t testing.TB, n int, ep uint64) *store.Artifact {
	t.Helper()
	acc := epochOracle(t, n, ep)
	lca, err := core.NewLCAKP(acc, epochParams)
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	ctx := context.Background()
	rule, err := store.MaterializeRule(ctx, lca)
	if err != nil {
		t.Fatalf("MaterializeRule: %v", err)
	}
	a, err := store.MaterializeEpoch(ctx, acc, rule, 0, epochParams.Seed, ep)
	if err != nil {
		t.Fatalf("MaterializeEpoch: %v", err)
	}
	return a
}

// TestStorePushToSuccessorZeroFetchOnMiss pins proactive replication:
// a freshly materialized epoch Put into one gateway's store is pushed
// to the tenant's ring successor, where it appears without the
// successor ever fetching — and the successor then serves the sealed
// epoch with zero peer fills and zero replica traffic.
func TestStorePushToSuccessorZeroFetchOnMiss(t *testing.T) {
	const n = 64
	const sealedEpoch = 2
	addrs, _, _ := epochFleet(t, n, 1)
	ctx := context.Background()
	id := engine.TenantID{Instance: 0, Seed: epochParams.Seed}
	vt := engine.VersionedTenant{Tenant: id, Epoch: sealedEpoch}
	want := epochBaseline(t, n, sealedEpoch)

	// Successor: empty store, mounted on the wire so it can accept
	// MsgStorePush frames.
	succStore := newTestStore(t, t.TempDir())
	gwSucc, err := New(Options{Replicas: addrs, Seed: epochParams.Seed, HedgeDelay: -1, Store: succStore})
	if err != nil {
		t.Fatalf("New(successor): %v", err)
	}
	defer gwSucc.Close()
	succSrv, err := cluster.NewQueryServer("127.0.0.1:0", gwSucc)
	if err != nil {
		t.Fatalf("NewQueryServer(successor): %v", err)
	}
	defer succSrv.Close()

	// Materializing gateway: the successor is its only peer, so the
	// ring successor of every tenant is the successor gateway.
	gwOwner, err := New(Options{
		Replicas:   addrs,
		Seed:       epochParams.Seed,
		HedgeDelay: -1,
		Store:      newTestStore(t, t.TempDir()),
		Peers:      []string{succSrv.Addr()},
		SelfAddr:   "gw-materializer",
	})
	if err != nil {
		t.Fatalf("New(owner): %v", err)
	}
	defer gwOwner.Close()

	if err := gwOwner.opts.Store.Put(ctx, materializeEpochArtifact(t, n, sealedEpoch)); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// The push runs asynchronously off the Put hook; poll for arrival.
	deadline := time.Now().Add(5 * time.Second)
	for !succStore.HasVersioned(vt) {
		if time.Now().After(deadline) {
			t.Fatalf("pushed artifact never appeared on the successor (push errors: %d)",
				gwOwner.Metrics().StorePushErrors)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m := gwOwner.Metrics(); m.StorePushes != 1 || m.StorePushErrors != 0 {
		t.Errorf("owner: StorePushes = %d StorePushErrors = %d, want 1 and 0", m.StorePushes, m.StorePushErrors)
	}
	if m := gwSucc.Metrics(); m.PushesAccepted != 1 {
		t.Errorf("successor: PushesAccepted = %d, want 1", m.PushesAccepted)
	}

	// Zero fetch-on-miss: the successor serves the sealed epoch from
	// its local store — no peer fill, no replica attempt.
	for i := 0; i < n; i++ {
		got, err := gwSucc.InSolutionEpoch(ctx, sealedEpoch, i)
		if err != nil {
			t.Fatalf("successor InSolutionEpoch(%d): %v", i, err)
		}
		if got != want[i] {
			t.Errorf("successor epoch-%d item %d = %v, want %v", sealedEpoch, i, got, want[i])
		}
	}
	m := gwSucc.Metrics()
	if m.PeerFills != 0 {
		t.Errorf("successor fetched on miss: PeerFills = %d, want 0", m.PeerFills)
	}
	if m.Attempts != 0 {
		t.Errorf("successor reached the fleet: Attempts = %d, want 0", m.Attempts)
	}
	if m.StoreServes != int64(n) {
		t.Errorf("successor: StoreServes = %d, want %d", m.StoreServes, n)
	}
}

// BenchmarkGatewayEpochPinnedCachedHit measures the epoch-pinned
// cached-hit path — the steady state of a pinned consumer after
// rollover. The pin adds one field to the cache key and nothing else;
// the budget (ALLOC_BUDGET.json) holds it at 0 allocs/op, same as the
// unpinned hit path.
func BenchmarkGatewayEpochPinnedCachedHit(b *testing.B) {
	const n = 200
	addrs, _, _ := epochFleet(b, n, 1)
	ctx := context.Background()
	gw, err := New(Options{Replicas: addrs, Seed: epochParams.Seed, HedgeDelay: -1})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer gw.Close()
	const ep = 1
	for i := 0; i < n; i++ { // warm every pinned key
		if _, err := gw.InSolutionEpoch(ctx, ep, i); err != nil {
			b.Fatalf("warm InSolutionEpoch: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.InSolutionEpoch(ctx, ep, i%n); err != nil {
			b.Fatalf("InSolutionEpoch: %v", err)
		}
	}
}
