package gateway

import (
	"context"
	"testing"

	"lcakp/internal/cluster"
	"lcakp/internal/core"
	"lcakp/internal/engine"
	"lcakp/internal/oracle"
	"lcakp/internal/store"
	"lcakp/internal/workload"
)

// materializeFleetArtifact produces the artifact for the instance
// testFleet serves — same workload generator, same parameters — so its
// bits are the fleet's bits in durable form.
func materializeFleetArtifact(t testing.TB, n int) *store.Artifact {
	t.Helper()
	gen, err := workload.Generate(workload.Spec{Name: "uniform", N: n, Seed: 17})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	acc, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	lca, err := core.NewLCAKP(acc, testParams)
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	ctx := context.Background()
	rule, err := store.MaterializeRule(ctx, lca)
	if err != nil {
		t.Fatalf("MaterializeRule: %v", err)
	}
	a, err := store.Materialize(ctx, acc, rule, 0, testParams.Seed)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return a
}

// newTestStore builds a store in a fresh temp dir holding the given
// artifacts.
func newTestStore(t testing.TB, dir string, artifacts ...*store.Artifact) *store.Store {
	t.Helper()
	st, err := store.New(dir, 0)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	for _, a := range artifacts {
		if err := st.Put(context.Background(), a); err != nil {
			t.Fatalf("store.Put: %v", err)
		}
	}
	return st
}

// baselineAnswers evaluates the reference LCA over every item.
func baselineAnswers(t testing.TB, baseline *core.LCAKP, n int) []bool {
	t.Helper()
	want := make([]bool, n)
	for i := range want {
		in, err := baseline.Query(context.Background(), i)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", i, err)
		}
		want[i] = in
	}
	return want
}

// TestStoreE2EBitIdentityAcrossServePaths is the acceptance run for
// the materialized artifact tier: the SAME (instance, seed) is served
// through four different mechanisms — replica fetch, answer-cache hit,
// local artifact bit probe, and peer-filled artifact — and every path
// must produce bit-identical answers. This is Definition 2.2 made
// operational: C(I, r) is a pure function, so where a bit is read from
// cannot change which bit it is.
func TestStoreE2EBitIdentityAcrossServePaths(t *testing.T) {
	const n = 96
	addrs, _, baseline := testFleet(t, n, 2)
	want := baselineAnswers(t, baseline, n)
	ctx := context.Background()
	artifact := materializeFleetArtifact(t, n)

	items := make([]int, n)
	for i := range items {
		items[i] = i
	}

	// Paths 1 and 2: replica fetch, then cache hit, on a store-less
	// gateway.
	gwFleet, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New(fleet): %v", err)
	}
	defer gwFleet.Close()
	for sweep, path := range []string{"replica", "cache"} {
		for i := 0; i < n; i++ {
			got, err := gwFleet.InSolution(ctx, i)
			if err != nil {
				t.Fatalf("%s InSolution(%d): %v", path, i, err)
			}
			if got != want[i] {
				t.Errorf("%s path: item %d = %v, want %v", path, i, got, want[i])
			}
		}
		if m := gwFleet.Metrics(); sweep == 1 && m.CacheHits < int64(n) {
			t.Errorf("cache sweep: CacheHits = %d, want >= %d", m.CacheHits, n)
		}
	}

	// Path 3: local artifact. A gateway holding the materialized
	// artifact must answer every query — point and batch — without a
	// single replica RPC.
	gwStore, err := New(Options{
		Replicas:   addrs,
		Seed:       testParams.Seed,
		HedgeDelay: -1,
		Store:      newTestStore(t, t.TempDir(), artifact),
	})
	if err != nil {
		t.Fatalf("New(store): %v", err)
	}
	defer gwStore.Close()
	batch, err := gwStore.InSolutionBatch(ctx, items)
	if err != nil {
		t.Fatalf("store-path batch: %v", err)
	}
	for i, got := range batch {
		if got != want[i] {
			t.Errorf("artifact path: item %d = %v, want %v", i, got, want[i])
		}
	}
	m := gwStore.Metrics()
	if m.Attempts != 0 {
		t.Errorf("artifact path: %d replica attempts, want 0", m.Attempts)
	}
	if m.StoreServes != int64(n) {
		t.Errorf("artifact path: StoreServes = %d, want %d", m.StoreServes, n)
	}

	// Path 4: peer-filled artifact. A store-backed gateway with an
	// empty store fetches the whole artifact from the owning peer on
	// first miss, backfills, and serves the same bits locally.
	peerSrv, err := cluster.NewQueryServer("127.0.0.1:0", gwStore)
	if err != nil {
		t.Fatalf("NewQueryServer(peer): %v", err)
	}
	defer peerSrv.Close()
	gwPeer, err := New(Options{
		Replicas:   addrs,
		Seed:       testParams.Seed,
		HedgeDelay: -1,
		Store:      newTestStore(t, t.TempDir()),
		Peers:      []string{peerSrv.Addr()},
		SelfAddr:   "gw-peer-under-test",
	})
	if err != nil {
		t.Fatalf("New(peer): %v", err)
	}
	defer gwPeer.Close()
	for i := 0; i < n; i++ {
		got, err := gwPeer.InSolution(ctx, i)
		if err != nil {
			t.Fatalf("peer InSolution(%d): %v", i, err)
		}
		if got != want[i] {
			t.Errorf("peer path: item %d = %v, want %v", i, got, want[i])
		}
	}
	pm := gwPeer.Metrics()
	if pm.PeerFills != 1 || pm.Backfills != 1 {
		t.Errorf("peer path: PeerFills = %d Backfills = %d, want 1 and 1 (one whole-artifact transfer)", pm.PeerFills, pm.Backfills)
	}
	if pm.StoreServes == 0 {
		t.Errorf("peer path: StoreServes = 0, want > 0")
	}
	if served := gwStore.Metrics().ArtifactsServed; served != 1 {
		t.Errorf("owning peer: ArtifactsServed = %d, want 1", served)
	}
}

// TestPeerFillOwnedKeysZeroReplicaTraffic pins the peer tier's traffic
// contract: a query for a peer-owned key is resolved entirely through
// the peer's artifact endpoint — ZERO replica RPC attempts — and once
// the artifact is backfilled, every further query for that tenant
// (self-owned keys included) is a local bit probe.
func TestPeerFillOwnedKeysZeroReplicaTraffic(t *testing.T) {
	const n = 64
	addrs, _, baseline := testFleet(t, n, 1)
	want := baselineAnswers(t, baseline, n)
	ctx := context.Background()
	artifact := materializeFleetArtifact(t, n)
	id := engine.TenantID{Instance: 0, Seed: testParams.Seed}

	// Owning gateway: holds the artifact, mounted on the wire.
	gwOwner, err := New(Options{
		Replicas:   addrs,
		Seed:       testParams.Seed,
		HedgeDelay: -1,
		Store:      newTestStore(t, t.TempDir(), artifact),
	})
	if err != nil {
		t.Fatalf("New(owner): %v", err)
	}
	defer gwOwner.Close()
	ownerSrv, err := cluster.NewQueryServer("127.0.0.1:0", gwOwner)
	if err != nil {
		t.Fatalf("NewQueryServer: %v", err)
	}
	defer ownerSrv.Close()

	// Filling gateway: empty store, the owner as its peer.
	const self = "filling-gateway"
	gwFill, err := New(Options{
		Replicas:   addrs,
		Seed:       testParams.Seed,
		HedgeDelay: -1,
		Store:      newTestStore(t, t.TempDir()),
		Peers:      []string{ownerSrv.Addr()},
		SelfAddr:   self,
	})
	if err != nil {
		t.Fatalf("New(fill): %v", err)
	}
	defer gwFill.Close()

	// Pick an item the ring assigns to the owner (not to self): its
	// first query must travel the peer path, never the replicas.
	ring := newPeerRing(self, []string{ownerSrv.Addr()})
	owned := -1
	for i := 0; i < n; i++ {
		if ring.owner(id, i) == ownerSrv.Addr() {
			owned = i
			break
		}
	}
	if owned < 0 {
		t.Fatal("ring assigned every item to self; vnode placement broken")
	}

	got, err := gwFill.InSolution(ctx, owned)
	if err != nil {
		t.Fatalf("InSolution(owned %d): %v", owned, err)
	}
	if got != want[owned] {
		t.Errorf("owned key %d = %v, want %v", owned, got, want[owned])
	}
	m := gwFill.Metrics()
	if m.Attempts != 0 {
		t.Fatalf("owned-key query made %d replica attempts, want 0", m.Attempts)
	}
	if m.PeerFills != 1 || m.Backfills != 1 || m.StoreServes != 1 {
		t.Errorf("owned-key query: PeerFills=%d Backfills=%d StoreServes=%d, want 1/1/1",
			m.PeerFills, m.Backfills, m.StoreServes)
	}

	// The backfilled artifact now covers the whole tenant: every item —
	// whoever owns it — serves locally with still zero replica traffic.
	for i := 0; i < n; i++ {
		got, err := gwFill.InSolution(ctx, i)
		if err != nil {
			t.Fatalf("InSolution(%d): %v", i, err)
		}
		if got != want[i] {
			t.Errorf("post-fill item %d = %v, want %v", i, got, want[i])
		}
	}
	m = gwFill.Metrics()
	if m.Attempts != 0 {
		t.Errorf("full sweep after backfill made %d replica attempts, want 0", m.Attempts)
	}
	if m.PeerFills != 1 {
		t.Errorf("full sweep re-fetched the artifact: PeerFills = %d, want 1", m.PeerFills)
	}
	// The local store persisted the fill: the artifact file exists and
	// matches the original bytes.
	a, err := store.ReadFile(gwFill.opts.Store.Path(id))
	if err != nil {
		t.Fatalf("backfilled artifact unreadable: %v", err)
	}
	if a.Checksum() != artifact.Checksum() {
		t.Errorf("backfilled artifact checksum %x != original %x", a.Checksum(), artifact.Checksum())
	}
}

// TestGatewayRestartServesWarmFromStore is the restart acceptance run:
// a gateway process dies, a new one mounts the same artifact
// directory, warms its cache from the artifacts, and serves its whole
// key space — every answer exact, zero replica traffic. The artifact
// is the cache's durable form.
func TestGatewayRestartServesWarmFromStore(t *testing.T) {
	const n = 80
	addrs, _, baseline := testFleet(t, n, 1)
	want := baselineAnswers(t, baseline, n)
	ctx := context.Background()
	dir := t.TempDir()

	// First life: a store-backed gateway persists the artifact.
	first := newTestStore(t, dir, materializeFleetArtifact(t, n))
	gw1, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1, Store: first})
	if err != nil {
		t.Fatalf("New(first): %v", err)
	}
	if got, err := gw1.InSolution(ctx, 0); err != nil || got != want[0] {
		t.Fatalf("first-life query = (%v, %v), want (%v, nil)", got, err, want[0])
	}
	gw1.Close()
	first.Close()

	// Second life: fresh process state, same directory.
	second := newTestStore(t, dir)
	gw2, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1, Store: second})
	if err != nil {
		t.Fatalf("New(second): %v", err)
	}
	defer gw2.Close()
	warmed, err := gw2.WarmAllFromStore(ctx)
	if err != nil {
		t.Fatalf("WarmAllFromStore: %v", err)
	}
	if warmed != n {
		t.Errorf("WarmAllFromStore warmed %d entries, want %d", warmed, n)
	}
	for i := 0; i < n; i++ {
		got, err := gw2.InSolution(ctx, i)
		if err != nil {
			t.Fatalf("InSolution(%d): %v", i, err)
		}
		if got != want[i] {
			t.Errorf("restarted gateway: item %d = %v, want %v", i, got, want[i])
		}
	}
	m := gw2.Metrics()
	if m.Attempts != 0 {
		t.Errorf("restarted gateway made %d replica attempts, want 0", m.Attempts)
	}
	if m.CacheHits != int64(n) {
		t.Errorf("restarted gateway: CacheHits = %d, want %d (every query warm)", m.CacheHits, n)
	}
	if m.Warmed != int64(n) {
		t.Errorf("restarted gateway: Warmed = %d, want %d", m.Warmed, n)
	}
}
