package gateway

import (
	"sync"
	"time"
)

// breakerState is one replica's circuit state.
type breakerState int32

const (
	// breakerClosed: the replica is serving; failures are counted.
	breakerClosed breakerState = iota
	// breakerHalfOpen: cooled down; one probe decides open vs closed.
	breakerHalfOpen
	// breakerOpen: tripped; the replica receives no traffic (except as
	// the router's last resort) until the cooldown elapses.
	breakerOpen
)

// breaker is one replica's circuit breaker, replacing the old binary
// health bit with the trip → open → half-open probe cycle. Because
// replicas are bit-interchangeable (Theorem 4.1), tripping a breaker
// has no correctness surface — it only moves traffic to replicas more
// likely to answer, and the probe cycle restores a recovered replica
// without operator action.
//
// Failures feed in from both live RPCs and the health loop's pings;
// any success snaps the breaker closed (consecutive-failure
// semantics).
type breaker struct {
	threshold int           // consecutive failures that trip the circuit
	cooldown  time.Duration // open dwell time before a probe is allowed

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time

	// onTrip fires on each closed/half-open → open transition; onClose
	// fires on each non-closed → closed transition (a recovery). Both
	// run outside mu.
	onTrip  func()
	onClose func()
}

// success records a successful RPC or probe: the circuit closes and
// the failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	prev := b.state
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
	if prev != breakerClosed && b.onClose != nil {
		b.onClose()
	}
}

// failure records a failed RPC or probe; it reports whether this
// failure tripped the circuit open (callers drop pooled connections on
// a trip).
func (b *breaker) failure() bool {
	b.mu.Lock()
	b.failures++
	tripped := false
	switch b.state {
	case breakerClosed:
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			tripped = true
		}
	case breakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = time.Now()
		tripped = true
	}
	b.mu.Unlock()
	if tripped && b.onTrip != nil {
		b.onTrip()
	}
	return tripped
}

// current returns the state without side effects (gauge exposition,
// routing snapshots).
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// tryProbe transitions open → half-open once the cooldown has elapsed
// and reports whether the caller should issue a probe now. Half-open
// also answers true (a re-probe is harmless), closed answers false —
// closed members are probed by the regular health ping anyway.
func (b *breaker) tryProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		return true
	case breakerHalfOpen:
		return true
	}
	return false
}
