package gateway

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/core"
	"lcakp/internal/engine"
	"lcakp/internal/oracle"
	"lcakp/internal/workload"
)

// testParams are the LCA parameters shared by every replica in these
// tests — the consistency mechanism under test. The loose epsilon
// keeps per-query rule computation cheap; consistency is epsilon-blind.
var testParams = core.Params{Epsilon: 0.45, Seed: 2}

// testFleet starts k independent LCA replica servers over one shared
// in-process instance and returns their addresses plus a local LCA
// with identical parameters as the bit-exactness baseline.
func testFleet(t testing.TB, n, k int) (addrs []string, servers []*cluster.LCAServer, baseline *core.LCAKP) {
	t.Helper()
	gen, err := workload.Generate(workload.Spec{Name: "uniform", N: n, Seed: 17})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for r := 0; r < k; r++ {
		acc, err := oracle.NewSliceOracle(gen.Float)
		if err != nil {
			t.Fatalf("NewSliceOracle: %v", err)
		}
		lca, err := core.NewLCAKP(acc, testParams)
		if err != nil {
			t.Fatalf("NewLCAKP: %v", err)
		}
		srv, err := cluster.NewLCAServer("127.0.0.1:0", engine.New(lca))
		if err != nil {
			t.Fatalf("NewLCAServer: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	acc, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	baseline, err = core.NewLCAKP(acc, testParams)
	if err != nil {
		t.Fatalf("NewLCAKP baseline: %v", err)
	}
	return addrs, servers, baseline
}

func TestCacheLRUEvictionAndHits(t *testing.T) {
	c := newAnswerCache(cacheShardCount) // one entry per shard
	k1 := Key{Instance: 1, Seed: 2, Item: 3}
	c.put(k1, true)
	if got, ok := c.get(k1); !ok || !got {
		t.Fatalf("get after put = (%v, %v), want (true, true)", got, ok)
	}
	// Distinct (Instance, Seed) must not collide on the same item.
	if _, ok := c.get(Key{Instance: 9, Seed: 2, Item: 3}); ok {
		t.Error("cache hit across distinct instance ids")
	}
	// Flood the shard holding k1 until k1 is evicted.
	shard := c.shard(k1)
	for i := 0; i < 10_000; i++ {
		k := Key{Instance: 1, Seed: 2, Item: 100 + i}
		if c.shard(k) == shard {
			c.put(k, false)
		}
	}
	if _, ok := c.get(k1); ok {
		t.Error("k1 survived a flood of its shard; LRU eviction broken")
	}
	if got := c.len(); got > cacheShardCount {
		t.Errorf("cache len %d exceeds capacity %d", got, cacheShardCount)
	}
}

func TestCacheSingleFlightDedup(t *testing.T) {
	c := newAnswerCache(64)
	k := Key{Item: 7}
	var calls atomic.Int64
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]bool, waiters)
	outcomes := make([]outcome, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ans, oc, err := c.do(context.Background(), k, func() (bool, error) {
				calls.Add(1)
				<-release
				return true, nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			results[w] = ans
			outcomes[w] = oc
		}(w)
	}
	// Let every goroutine reach the flight before releasing the leader.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times for %d concurrent callers, want 1", got, waiters)
	}
	leaders, others := 0, 0
	for w := 0; w < waiters; w++ {
		if !results[w] {
			t.Errorf("caller %d got answer false, want true", w)
		}
		if outcomes[w] == outcomeLed {
			leaders++
		} else {
			others++ // shared the flight, or hit the freshly stored entry
		}
	}
	if leaders != 1 || others != waiters-1 {
		t.Errorf("leaders=%d others=%d, want 1 and %d", leaders, others, waiters-1)
	}
	// The answer is now resident.
	if _, oc, _ := c.do(context.Background(), k, func() (bool, error) {
		t.Error("fn ran on a resident key")
		return false, nil
	}); oc != outcomeHit {
		t.Errorf("outcome after flight = %v, want hit", oc)
	}
}

func TestCacheFlightErrorNotCached(t *testing.T) {
	c := newAnswerCache(64)
	k := Key{Item: 1}
	boom := errors.New("boom")
	if _, _, err := c.do(context.Background(), k, func() (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Fatalf("do error = %v, want boom", err)
	}
	ran := false
	if _, _, err := c.do(context.Background(), k, func() (bool, error) { ran = true; return true, nil }); err != nil {
		t.Fatalf("do after error: %v", err)
	}
	if !ran {
		t.Error("failed flight was cached; errors must not populate the cache")
	}
}

func TestGatewayAnswersMatchBaseline(t *testing.T) {
	addrs, _, baseline := testFleet(t, 300, 3)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	ctx := context.Background()
	for i := 0; i < 300; i += 7 {
		want, err := baseline.Query(ctx, i)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", i, err)
		}
		got, err := gw.InSolution(ctx, i)
		if err != nil {
			t.Fatalf("InSolution(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("item %d: gateway %v, baseline %v", i, got, want)
		}
	}
	// Second pass: every answer must now come from the cache.
	before := gw.Metrics()
	for i := 0; i < 300; i += 7 {
		if _, err := gw.InSolution(ctx, i); err != nil {
			t.Fatalf("cached InSolution(%d): %v", i, err)
		}
	}
	after := gw.Metrics()
	if hits := after.CacheHits - before.CacheHits; hits != 43 {
		t.Errorf("second pass produced %d cache hits, want 43", hits)
	}
}

func TestGatewayBatchMixesCachedAndFetched(t *testing.T) {
	addrs, _, baseline := testFleet(t, 200, 2)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	ctx := context.Background()
	// Warm items 0..9 through point queries, then batch 0..19 with a
	// duplicate; half served from cache, half fetched, answers exact.
	for i := 0; i < 10; i++ {
		if _, err := gw.InSolution(ctx, i); err != nil {
			t.Fatalf("warm InSolution(%d): %v", i, err)
		}
	}
	indices := make([]int, 0, 21)
	for i := 0; i < 20; i++ {
		indices = append(indices, i)
	}
	indices = append(indices, 5) // duplicate within the batch
	got, err := gw.InSolutionBatch(ctx, indices)
	if err != nil {
		t.Fatalf("InSolutionBatch: %v", err)
	}
	for k, item := range indices {
		want, err := baseline.Query(ctx, item)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", item, err)
		}
		if got[k] != want {
			t.Errorf("batch position %d (item %d): got %v, want %v", k, item, want, got[k])
		}
	}
	m := gw.Metrics()
	if m.CacheHits < 10 {
		t.Errorf("CacheHits = %d, want >= 10 (warmed items)", m.CacheHits)
	}
	if m.CacheMisses < 10 {
		t.Errorf("CacheMisses = %d, want >= 10 (cold items)", m.CacheMisses)
	}
}

func TestGatewayCoalescerBatchesConcurrentQueries(t *testing.T) {
	addrs, servers, baseline := testFleet(t, 200, 1)
	gw, err := New(Options{
		Replicas:    addrs,
		Seed:        testParams.Seed,
		HedgeDelay:  -1,
		BatchWindow: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	ctx := context.Background()
	const burst = 16
	var wg sync.WaitGroup
	answers := make([]bool, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := gw.InSolution(ctx, i)
			if err != nil {
				t.Errorf("InSolution(%d): %v", i, err)
				return
			}
			answers[i] = got
		}(i)
	}
	wg.Wait()
	for i := 0; i < burst; i++ {
		want, err := baseline.Query(ctx, i)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", i, err)
		}
		if answers[i] != want {
			t.Errorf("item %d: gateway %v, baseline %v", i, answers[i], want)
		}
	}
	if m := gw.Metrics(); m.Coalesced == 0 {
		t.Error("Coalesced = 0; a 16-query burst under a 20ms window should share frames")
	}
	// The replica must have seen far fewer engine queries than the
	// burst size (batches count once).
	if tot := servers[0].Metrics(); tot.Queries >= burst {
		t.Errorf("replica served %d engine queries for a %d-query burst; coalescing ineffective", tot.Queries, burst)
	}
}

func TestGatewayHedgingFiresAndWins(t *testing.T) {
	// One real replica and one black hole that accepts connections and
	// never answers. Routed to the black hole first, the query must be
	// rescued by the hedge to the real replica, well before the RPC
	// timeout.
	addrs, _, baseline := testFleet(t, 100, 1)
	hole := newBlackHole(t)
	gw, err := New(Options{
		Replicas:    []string{hole, addrs[0]},
		Seed:        testParams.Seed,
		HedgeDelay:  30 * time.Millisecond,
		RPCTimeout:  5 * time.Second,
		CacheSize:   -1,
		MaxAttempts: 1,
		RouteSeed:   3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	ctx := context.Background()
	start := time.Now()
	sawHedgeWin := false
	for i := 0; i < 30 && !sawHedgeWin; i++ {
		got, err := gw.InSolution(ctx, i)
		if err != nil {
			t.Fatalf("InSolution(%d): %v", i, err)
		}
		want, err := baseline.Query(ctx, i)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("item %d: gateway %v, baseline %v", i, got, want)
		}
		sawHedgeWin = gw.Metrics().HedgeWins > 0
	}
	if !sawHedgeWin {
		t.Fatalf("no hedge win after 30 queries against a black-hole replica (metrics %+v)", gw.Metrics())
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("hedged queries took %v; hedging should rescue them in ~the hedge delay", elapsed)
	}
}

func TestGatewayNoReplicas(t *testing.T) {
	if _, err := New(Options{}); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("New with no replicas: error = %v, want ErrNoReplicas", err)
	}
}

func TestGatewayServesWireProtocol(t *testing.T) {
	// A gateway mounted behind cluster.NewQueryServer is
	// indistinguishable from a replica to an unmodified LCAClient.
	addrs, _, baseline := testFleet(t, 150, 2)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	front, err := cluster.NewQueryServer("127.0.0.1:0", gw)
	if err != nil {
		t.Fatalf("NewQueryServer: %v", err)
	}
	defer front.Close()

	client, err := cluster.DialLCA(front.Addr(), 0)
	if err != nil {
		t.Fatalf("DialLCA(gateway): %v", err)
	}
	defer client.Close()

	ctx := context.Background()
	if err := client.Ping(ctx); err != nil {
		t.Fatalf("Ping through gateway: %v", err)
	}
	indices := []int{0, 5, 50, 149}
	got, err := client.InSolutionBatch(ctx, indices)
	if err != nil {
		t.Fatalf("InSolutionBatch through gateway: %v", err)
	}
	for k, item := range indices {
		want, err := baseline.Query(ctx, item)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", item, err)
		}
		if got[k] != want {
			t.Errorf("item %d through wire: got %v, want %v", item, got[k], want)
		}
	}
}

// newBlackHole listens, accepts, and never responds — the stuck
// replica for hedging tests. Connections are severed at test cleanup.
func newBlackHole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("black hole listen: %v", err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, conn := range conns {
			_ = conn.Close()
		}
	})
	return ln.Addr().String()
}
