package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/obs"
	"lcakp/internal/rng"
)

// dialDirect opens a plain single-connection client on one replica —
// the pre-gateway access path, used as the comparison baseline.
func dialDirect(addr string) (*cluster.LCAClient, error) {
	return cluster.DialLCA(addr, 0)
}

// TestGatewayE2EKillReplicaMidStream is the subsystem's acceptance
// test: a 10k-query client stream against a 3-replica fleet, with one
// replica killed mid-stream. The stream must complete with zero
// caller-visible errors, every answer bit-identical to a
// single-replica baseline, at least one recorded failover, and a
// nonzero cache hit rate — availability and efficiency from the
// serving layer, correctness from Theorem 4.1 alone.
func TestGatewayE2EKillReplicaMidStream(t *testing.T) {
	const (
		n       = 2000
		queries = 10_000
		workers = 8
		// The kill lands while the cache is still warming (a uniform
		// stream needs ~n·ln(n) draws to see every item), so plenty of
		// cache-miss RPC traffic flows after it — the failover trigger.
		killAfter   = 2000
		cacheSize   = 4096
		killedIndex = 1
	)
	addrs, servers, baseline := testFleet(t, n, 3)

	// Baseline answers, computed once from an identically configured
	// local replica (bit-identical to the fleet by Definition 2.2).
	ctx := context.Background()
	expected := make([]bool, n)
	for i := 0; i < n; i++ {
		want, err := baseline.Query(ctx, i)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", i, err)
		}
		expected[i] = want
	}

	gw, err := New(Options{
		Replicas:       addrs,
		Seed:           testParams.Seed,
		CacheSize:      cacheSize,
		MaxAttempts:    4,
		RetryBackoff:   time.Millisecond,
		HedgeDelay:     -1, // isolate the failover signal from hedging
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	// The gateway's live counters on a /metrics endpoint, scraped
	// concurrently with the query stream: the operator's view of the
	// incident as it happens.
	reg := obs.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		t.Fatalf("RegisterMetrics: %v", err)
	}
	dbg, err := obs.NewDebugServer("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	defer dbg.Close()
	scrape := func() string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.Addr() + "/metrics")
		if err != nil {
			t.Fatalf("scrape /metrics: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read /metrics: %v", err)
		}
		return string(body)
	}
	scrapeDone := make(chan struct{})
	streamDone := make(chan struct{})
	var midStreamScrapes atomic.Int64
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-streamDone:
				return
			case <-time.After(10 * time.Millisecond):
				if strings.Contains(scrape(), "lcakp_gateway_queries_total") {
					midStreamScrapes.Add(1)
				}
			}
		}
	}()

	var issued atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	errs := make([]error, workers)
	mismatches := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w + 1)).Derive("e2e-queries")
			for q := 0; q < queries/workers; q++ {
				if issued.Add(1) == killAfter {
					killOnce.Do(func() {
						if err := servers[killedIndex].Close(); err != nil {
							t.Errorf("kill replica %d: %v", killedIndex, err)
						}
					})
				}
				item := src.Intn(n)
				got, err := gw.InSolution(ctx, item)
				if err != nil {
					errs[w] = err
					return
				}
				if got != expected[item] {
					mismatches[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	close(streamDone)
	<-scrapeDone

	if midStreamScrapes.Load() == 0 {
		t.Error("no successful mid-stream /metrics scrape")
	}
	// The post-incident scrape must show the incident: failovers fired
	// and the cache absorbed repeats, as nonzero counters in the
	// exposition text an external scraper would collect.
	exposition := scrape()
	for _, metric := range []string{"lcakp_gateway_failovers_total", "lcakp_gateway_cache_hits_total"} {
		found := false
		for _, line := range strings.Split(exposition, "\n") {
			if strings.HasPrefix(line, metric+" ") {
				found = true
				if strings.TrimPrefix(line, metric+" ") == "0" {
					t.Errorf("scrape shows %s, want a nonzero count", line)
				}
			}
		}
		if !found {
			t.Errorf("scrape missing %s; got:\n%s", metric, exposition)
		}
	}

	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d saw a caller-visible error: %v", w, err)
		}
	}
	for w, miss := range mismatches {
		if miss != 0 {
			t.Errorf("worker %d saw %d answers differing from the baseline", w, miss)
		}
	}
	m := gw.Metrics()
	if m.Failovers < 1 {
		t.Errorf("Failovers = %d, want >= 1 after killing a replica mid-stream", m.Failovers)
	}
	if m.CacheHits == 0 || m.CacheHitRate() <= 0 {
		t.Errorf("cache hit rate = %v (hits=%d misses=%d), want > 0", m.CacheHitRate(), m.CacheHits, m.CacheMisses)
	}
	if m.Queries != queries {
		t.Errorf("Queries = %d, want %d", m.Queries, queries)
	}
	// The killed replica must have dropped out of the healthy set.
	deadline := time.Now().Add(2 * time.Second)
	for len(gw.Healthy()) != 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if healthy := gw.Healthy(); len(healthy) != 2 {
		t.Errorf("Healthy() = %v, want the 2 surviving replicas", healthy)
	}
	t.Logf("e2e metrics: %+v (hit rate %.3f)", m, m.CacheHitRate())
}

// TestGatewayE2EForensicsKillReplica is the acceptance test for the
// query-forensics pipeline: a traced query stream against a 3-replica
// fleet with one replica killed mid-stream must leave (a) a slow-trace
// capture whose span tree carries the failover warn event with a
// nonzero probe count, (b) a latency exemplar on /debug/exemplars
// (with /metrics staying plain scrapeable text) whose trace ID
// resolves to a span dump on /debug/traces, and (c) that same trace in
// the payload a push cycle delivers to an OTLP-shaped collector.
func TestGatewayE2EForensicsKillReplica(t *testing.T) {
	const (
		n           = 500
		queries     = 4000
		workers     = 8
		killAfter   = 800
		killedIndex = 1
	)
	addrs, servers, _ := testFleet(t, n, 3)

	tracer := obs.NewTracer(8192)
	// Threshold 0: capture is warn-event-triggered only, so every
	// retained trace is an incident artifact, not a latency outlier.
	slow := obs.NewSlowTraceLog(128, 0)
	tracer.SetSlowLog(slow)

	gw, err := New(Options{
		Replicas:       addrs,
		Seed:           testParams.Seed,
		CacheSize:      2048,
		MaxAttempts:    4,
		RetryBackoff:   time.Millisecond,
		HedgeDelay:     -1,
		HealthInterval: 100 * time.Millisecond,
		Tracer:         tracer,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	reg := obs.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		t.Fatalf("RegisterMetrics: %v", err)
	}
	if err := slow.RegisterMetrics(reg, ""); err != nil {
		t.Fatalf("slow RegisterMetrics: %v", err)
	}
	dbg, err := obs.NewDebugServer("127.0.0.1:0", reg, tracer.Recorder(), slow)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	defer dbg.Close()

	// The collector the pusher delivers to: it decodes the OTLP-shaped
	// payload the way cmd/lcaobs does and remembers every span's trace.
	var (
		pushMu       sync.Mutex
		pushedTraces = map[string]bool{}
		pushedMetric bool
	)
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var env obs.PushPayload
		if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
			t.Errorf("collector: bad push body: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pushMu.Lock()
		for _, rs := range env.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				for _, s := range ss.Spans {
					pushedTraces[s.TraceID] = true
				}
			}
		}
		for _, rm := range env.ResourceMetrics {
			for _, sm := range rm.ScopeMetrics {
				if len(sm.Metrics) > 0 {
					pushedMetric = true
				}
			}
		}
		pushMu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer collector.Close()
	pusher, err := obs.NewPusher(obs.PusherOptions{
		Endpoint: collector.URL,
		Service:  "gateway-e2e",
		Registry: reg,
		Recorder: tracer.Recorder(),
	})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}

	ctx := context.Background()
	var issued atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w + 100)).Derive("forensics-queries")
			for q := 0; q < queries/workers; q++ {
				if issued.Add(1) == killAfter {
					killOnce.Do(func() {
						if err := servers[killedIndex].Close(); err != nil {
							t.Errorf("kill replica %d: %v", killedIndex, err)
						}
					})
				}
				if _, err := gw.InSolution(ctx, src.Intn(n)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d saw a caller-visible error: %v", w, err)
		}
	}
	if f := gw.Metrics().Failovers; f < 1 {
		t.Fatalf("Failovers = %d, want >= 1 after killing a replica mid-stream", f)
	}

	// (a) The incident left a slow-trace capture whose span tree carries
	// the failover warn event, stamped with the probes paid so far.
	var failoverTrace obs.TraceID
	for _, st := range slow.Captured() {
		for _, s := range st.Spans {
			for _, ev := range s.Events {
				if ev.Name == "gateway.failover" && ev.Level == obs.LevelWarn {
					failoverTrace = st.Trace
					if ev.Probes < 1 {
						t.Errorf("failover event probes = %d, want >= 1 (the failed attempt was paid for)", ev.Probes)
					}
					if st.Reason == "" {
						t.Errorf("capture reason empty, want event:... or threshold")
					}
				}
			}
		}
	}
	if failoverTrace == 0 {
		t.Fatalf("no slow-trace capture carries a gateway.failover warn event; captured: %+v", slow.Captured())
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return string(body)
	}

	// (b) /metrics must stay strictly plain Prometheus text (a single
	// exemplar annotation would fail a real scrape); the latency
	// exemplar lives on /debug/exemplars, and its trace resolves to a
	// full span dump on /debug/traces.
	scrape := get("/metrics")
	if _, err := obs.ParseExposition(strings.NewReader(scrape)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if strings.Contains(scrape, " # {") {
		t.Errorf("/metrics carries an exemplar annotation — not scrapeable Prometheus text")
	}
	families, err := obs.ParseExposition(strings.NewReader(get("/debug/exemplars")))
	if err != nil {
		t.Fatalf("/debug/exemplars does not parse: %v", err)
	}
	var exemplarTrace string
	for _, f := range families {
		if f.Name != "lcakp_gateway_rpc_latency_seconds" {
			continue
		}
		for _, s := range f.Samples {
			if id := s.Exemplar.Label("trace_id"); id != "" {
				exemplarTrace = id
			}
		}
	}
	if exemplarTrace == "" {
		t.Fatal("no trace_id exemplar on lcakp_gateway_rpc_latency_seconds in /debug/exemplars")
	}
	dump := get("/debug/traces?trace=" + exemplarTrace)
	if !strings.Contains(dump, "name=gateway.query") {
		t.Errorf("/debug/traces?trace=%s does not resolve to a gateway.query span:\n%s", exemplarTrace, dump)
	}

	// (c) One push cycle delivers the incident trace and the gateway
	// metrics to the collector.
	if err := pusher.Flush(ctx); err != nil {
		t.Fatalf("push Flush: %v", err)
	}
	pushMu.Lock()
	defer pushMu.Unlock()
	if !pushedTraces[failoverTrace.String()] {
		t.Errorf("push cycle did not deliver the failover trace %s (%d traces delivered)",
			failoverTrace, len(pushedTraces))
	}
	if !pushedMetric {
		t.Error("push cycle delivered no metrics")
	}
}

// TestGatewayCachedThroughputAdvantage checks the serving claim behind
// the answer cache with a coarse in-test measurement: repeat queries
// answered from the gateway cache must be at least 5x faster than
// direct single-client queries against a replica (each direct query
// re-runs the full LCA pipeline; see BenchmarkGatewayVsDirect for the
// precise numbers).
func TestGatewayCachedThroughputAdvantage(t *testing.T) {
	addrs, _, _ := testFleet(t, 300, 1)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	ctx := context.Background()
	const item = 7
	if _, err := gw.InSolution(ctx, item); err != nil { // warm the cache
		t.Fatalf("warm InSolution: %v", err)
	}

	const cachedQueries = 2000
	start := time.Now()
	for q := 0; q < cachedQueries; q++ {
		if _, err := gw.InSolution(ctx, item); err != nil {
			t.Fatalf("cached InSolution: %v", err)
		}
	}
	perCached := time.Since(start) / cachedQueries

	// Direct client on the raw replica: every query recomputes.
	direct, err := dialDirect(addrs[0])
	if err != nil {
		t.Fatalf("dial direct: %v", err)
	}
	defer direct.Close()
	const directQueries = 100
	start = time.Now()
	for q := 0; q < directQueries; q++ {
		if _, err := direct.InSolution(ctx, item); err != nil {
			t.Fatalf("direct InSolution: %v", err)
		}
	}
	perDirect := time.Since(start) / directQueries

	if perCached*5 > perDirect {
		t.Errorf("cached query %v vs direct %v: want >= 5x advantage", perCached, perDirect)
	}
	t.Logf("cached %v/query, direct %v/query (%.0fx)", perCached, perDirect, float64(perDirect)/float64(perCached))
}
