package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"lcakp/internal/cluster"
)

// member is one replica address: its idle-connection pool, its health
// bit, and its in-flight load (the router's power-of-two signal).
type member struct {
	addr       string
	rpcTimeout time.Duration
	maxIdle    int
	counters   *counters

	inflight atomic.Int64
	healthy  atomic.Bool

	mu   sync.Mutex
	idle []*cluster.LCAClient
}

// get checks out a connection: the most recently parked idle one, or a
// fresh dial when the pool is empty. Broken parked connections are
// discarded on the way.
func (m *member) get(ctx context.Context) (*cluster.LCAClient, error) {
	m.mu.Lock()
	for len(m.idle) > 0 {
		c := m.idle[len(m.idle)-1]
		m.idle = m.idle[:len(m.idle)-1]
		if c.Broken() {
			_ = c.Close()
			continue
		}
		m.mu.Unlock()
		return c, nil
	}
	m.mu.Unlock()
	return cluster.DialLCAContext(ctx, m.addr, m.rpcTimeout)
}

// put parks a connection for reuse. Broken connections are closed
// instead — the crash-aware half of reconnection: the next get()
// simply dials anew.
func (m *member) put(c *cluster.LCAClient) {
	if c.Broken() {
		_ = c.Close()
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.idle) >= m.maxIdle {
		_ = c.Close()
		return
	}
	m.idle = append(m.idle, c)
}

// markDown flips the member unhealthy and drops its parked
// connections (they point at a peer that just failed us).
func (m *member) markDown() {
	m.healthy.Store(false)
	m.dropIdle()
}

// markUp flips the member healthy, counting the revival.
func (m *member) markUp() {
	if !m.healthy.Swap(true) {
		m.counters.reconnects.Add(1)
	}
}

// dropIdle closes and forgets all parked connections.
func (m *member) dropIdle() {
	m.mu.Lock()
	idle := m.idle
	m.idle = nil
	m.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
}

// checkHealth performs one ping round trip and updates the health bit.
func (m *member) checkHealth(ctx context.Context) {
	c, err := m.get(ctx)
	if err != nil {
		m.healthy.Store(false)
		return
	}
	err = c.Ping(ctx)
	m.put(c)
	if err != nil {
		m.markDown()
		return
	}
	m.markUp()
}

// pool manages the replica members and the periodic health loop.
type pool struct {
	members  []*member
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// newPool builds the members (all presumed healthy until proven
// otherwise) and starts the health loop.
func newPool(addrs []string, rpcTimeout time.Duration, maxIdle int, interval time.Duration, c *counters) *pool {
	p := &pool{interval: interval, stop: make(chan struct{})}
	for _, addr := range addrs {
		m := &member{addr: addr, rpcTimeout: rpcTimeout, maxIdle: maxIdle, counters: c}
		m.healthy.Store(true)
		p.members = append(p.members, m)
	}
	p.wg.Add(1)
	go p.healthLoop()
	return p
}

// healthLoop pings every member each interval. A member that fails its
// ping goes unhealthy (the router stops routing to it except as a
// last resort); one that answers again goes healthy — no operator
// action, no replica-side state, exactly because replicas are
// stateless.
func (p *pool) healthLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			for _, m := range p.members {
				ctx, cancel := context.WithTimeout(context.Background(), p.interval)
				m.checkHealth(ctx)
				cancel()
			}
		}
	}
}

// healthySnapshot returns the currently healthy members.
func (p *pool) healthySnapshot() []*member {
	out := make([]*member, 0, len(p.members))
	for _, m := range p.members {
		if m.healthy.Load() {
			out = append(out, m)
		}
	}
	return out
}

// close stops the health loop and closes every parked connection.
func (p *pool) close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	for _, m := range p.members {
		m.dropIdle()
	}
}
