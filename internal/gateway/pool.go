package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"lcakp/internal/cluster"
)

// member is one replica address: its idle-connection pool, its circuit
// breaker, and its in-flight load (the router's power-of-two signal).
type member struct {
	addr       string
	rpcTimeout time.Duration
	maxIdle    int
	counters   *counters

	inflight atomic.Int64
	brk      *breaker

	mu   sync.Mutex
	idle []*cluster.LCAClient
}

// get checks out a connection: the most recently parked idle one, or a
// fresh dial when the pool is empty. Broken parked connections are
// discarded on the way.
func (m *member) get(ctx context.Context) (*cluster.LCAClient, error) {
	m.mu.Lock()
	for len(m.idle) > 0 {
		c := m.idle[len(m.idle)-1]
		m.idle = m.idle[:len(m.idle)-1]
		if c.Broken() {
			_ = c.Close()
			continue
		}
		m.mu.Unlock()
		return c, nil
	}
	m.mu.Unlock()
	return cluster.DialLCAContext(ctx, m.addr, m.rpcTimeout)
}

// put parks a connection for reuse. Broken connections are closed
// instead — the crash-aware half of reconnection: the next get()
// simply dials anew.
func (m *member) put(c *cluster.LCAClient) {
	if c.Broken() {
		_ = c.Close()
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.idle) >= m.maxIdle {
		_ = c.Close()
		return
	}
	m.idle = append(m.idle, c)
}

// markDown records one failure against the member's breaker; when the
// streak trips the circuit open, the parked connections are dropped
// (they point at a peer that just failed us). It reports whether this
// failure tripped the breaker, so callers can annotate the trace that
// witnessed the trip.
func (m *member) markDown() bool {
	if m.brk.failure() {
		m.dropIdle()
		return true
	}
	return false
}

// markUp records one success: the breaker snaps closed (counting the
// revival when it was open or half-open, via onClose).
func (m *member) markUp() { m.brk.success() }

// dropIdle closes and forgets all parked connections.
func (m *member) dropIdle() {
	m.mu.Lock()
	idle := m.idle
	m.idle = nil
	m.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
}

// checkHealth drives the breaker cycle: a closed member gets a
// routine ping, an open member is left alone until its cooldown
// elapses, then gets exactly one half-open probe; probe success closes
// the circuit, probe failure reopens it for another cooldown.
func (m *member) checkHealth(ctx context.Context) {
	if m.brk.current() != breakerClosed && !m.brk.tryProbe() {
		return // open and still cooling down
	}
	c, err := m.get(ctx)
	if err != nil {
		m.markDown()
		return
	}
	err = c.Ping(ctx)
	m.put(c)
	if err != nil {
		m.markDown()
		return
	}
	m.markUp()
}

// pool manages the replica members and the periodic health loop.
type pool struct {
	members  []*member
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// newPool builds the members (all breakers closed until failures say
// otherwise) and starts the health loop.
func newPool(addrs []string, rpcTimeout time.Duration, maxIdle int, interval time.Duration,
	threshold int, cooldown time.Duration, c *counters) *pool {
	p := &pool{interval: interval, stop: make(chan struct{})}
	for _, addr := range addrs {
		m := &member{addr: addr, rpcTimeout: rpcTimeout, maxIdle: maxIdle, counters: c}
		m.brk = &breaker{
			threshold: threshold,
			cooldown:  cooldown,
			onTrip:    func() { c.breakerTrips.Add(1) },
			onClose:   func() { c.reconnects.Add(1) },
		}
		p.members = append(p.members, m)
	}
	p.wg.Add(1)
	go p.healthLoop()
	return p
}

// healthLoop pings every member each interval, driving each breaker's
// probe cycle. A member whose breaker trips stops receiving traffic
// (except as the router's last resort); once its cooldown elapses a
// single probe decides recovery — no operator action, no replica-side
// state, exactly because replicas are stateless.
func (p *pool) healthLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			for _, m := range p.members {
				ctx, cancel := context.WithTimeout(context.Background(), p.interval)
				m.checkHealth(ctx)
				cancel()
			}
		}
	}
}

// healthySnapshot returns the members with a closed breaker. Half-open
// members are deliberately excluded: their single probe belongs to the
// health loop, not to live traffic, so a flapping replica cannot eat
// caller latency while it proves itself.
func (p *pool) healthySnapshot() []*member {
	out := make([]*member, 0, len(p.members))
	for _, m := range p.members {
		if m.brk.current() == breakerClosed {
			out = append(out, m)
		}
	}
	return out
}

// close stops the health loop and closes every parked connection.
func (p *pool) close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	for _, m := range p.members {
		m.dropIdle()
	}
}
