package gateway

import "sync/atomic"

// Metrics is a snapshot of a Gateway's cumulative serving counters, in
// the style of engine.Totals: monotonic counts an operator reads to
// judge cache efficiency, hedging value, and failover activity.
type Metrics struct {
	// Queries counts point queries accepted (InSolution calls).
	Queries int64
	// BatchQueries counts batch queries accepted (a batch counts once).
	BatchQueries int64
	// CacheHits and CacheMisses split cache lookups. Batch queries
	// contribute one lookup per index.
	CacheHits, CacheMisses int64
	// FlightsShared counts queries answered by joining another query's
	// in-flight computation (single-flight dedup).
	FlightsShared int64
	// Coalesced counts point queries folded into a shared
	// InSolutionBatch frame by the coalescer.
	Coalesced int64
	// Attempts counts replica RPC attempts (first tries and retries).
	Attempts int64
	// Retries counts re-sends after a failed attempt.
	Retries int64
	// Failovers counts retries that switched to a different replica.
	Failovers int64
	// Hedges counts secondary RPCs fired after the hedge delay;
	// HedgeWins counts hedges whose answer arrived first.
	Hedges, HedgeWins int64
	// Reconnects counts replica transitions from unhealthy back to
	// healthy.
	Reconnects int64
	// Errors counts queries that exhausted every attempt and surfaced
	// an error to the caller.
	Errors int64
}

// CacheHitRate returns hits / (hits + misses), 0 when no lookups
// happened yet.
func (m Metrics) CacheHitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// counters is the atomic backing for Metrics, shared by the pool,
// router, cache, and coalescer.
type counters struct {
	queries       atomic.Int64
	batchQueries  atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	flightsShared atomic.Int64
	coalesced     atomic.Int64
	attempts      atomic.Int64
	retries       atomic.Int64
	failovers     atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
	reconnects    atomic.Int64
	errorsN       atomic.Int64
}

// snapshot reads the counters into a Metrics value.
func (c *counters) snapshot() Metrics {
	return Metrics{
		Queries:       c.queries.Load(),
		BatchQueries:  c.batchQueries.Load(),
		CacheHits:     c.cacheHits.Load(),
		CacheMisses:   c.cacheMisses.Load(),
		FlightsShared: c.flightsShared.Load(),
		Coalesced:     c.coalesced.Load(),
		Attempts:      c.attempts.Load(),
		Retries:       c.retries.Load(),
		Failovers:     c.failovers.Load(),
		Hedges:        c.hedges.Load(),
		HedgeWins:     c.hedgeWins.Load(),
		Reconnects:    c.reconnects.Load(),
		Errors:        c.errorsN.Load(),
	}
}
