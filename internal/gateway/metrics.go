package gateway

import (
	"fmt"

	"lcakp/internal/obs"
)

// Metrics is a snapshot of a Gateway's cumulative serving counters, in
// the style of engine.Totals: monotonic counts an operator reads to
// judge cache efficiency, hedging value, and failover activity.
type Metrics struct {
	// Queries counts point queries accepted (InSolution calls).
	Queries int64
	// BatchQueries counts batch queries accepted (a batch counts once).
	BatchQueries int64
	// CacheHits and CacheMisses split cache lookups. Batch queries
	// contribute one lookup per index.
	CacheHits, CacheMisses int64
	// FlightsShared counts queries answered by joining another query's
	// in-flight computation (single-flight dedup).
	FlightsShared int64
	// Coalesced counts point queries folded into a shared
	// InSolutionBatch frame by the coalescer.
	Coalesced int64
	// Attempts counts replica RPC attempts (first tries and retries).
	Attempts int64
	// Retries counts re-sends after a failed attempt.
	Retries int64
	// Failovers counts retries that switched to a different replica.
	Failovers int64
	// Hedges counts secondary RPCs fired after the hedge delay;
	// HedgeWins counts hedges whose answer arrived first.
	Hedges, HedgeWins int64
	// Reconnects counts replica transitions from unhealthy back to
	// healthy.
	Reconnects int64
	// Errors counts queries that exhausted every attempt and surfaced
	// an error to the caller.
	Errors int64
	// Warmed counts cache entries preloaded by Warm and WarmFromStore.
	Warmed int64
	// StoreServes counts queries answered from the materialized
	// artifact tier (local store, including just-backfilled artifacts)
	// instead of the replica fleet.
	StoreServes int64
	// PeerFills counts whole artifacts fetched from owning peers;
	// PeerFillErrors counts fetches that failed (the query fell back to
	// replica fetch).
	PeerFills, PeerFillErrors int64
	// Backfills counts fetched artifacts persisted into the local store.
	Backfills int64
	// ArtifactsServed counts MsgStoreFetch requests this gateway
	// answered for its peers.
	ArtifactsServed int64
	// StorePushes counts artifacts proactively replicated to the ring
	// successor after a local Put; StorePushErrors counts pushes that
	// failed (the successor falls back to fetch-on-miss, so a failed
	// push costs latency later, never correctness).
	StorePushes, StorePushErrors int64
	// PushesAccepted counts MsgStorePush artifacts this gateway
	// installed on behalf of pushing peers.
	PushesAccepted int64
	// QuotaRejects counts queries rejected at admission by a tenant's
	// token bucket (across all tenants; see TenantMetrics for the
	// per-tenant split).
	QuotaRejects int64
	// AuthRejects counts wire frames rejected by the Authorizer.
	AuthRejects int64
	// BreakerTrips counts replica circuit-breaker transitions to open
	// (first trips and failed half-open probes alike).
	BreakerTrips int64
}

// CacheHitRate returns hits / (hits + misses), 0 when no lookups
// happened yet.
func (m Metrics) CacheHitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// counters is the atomic backing for Metrics, shared by the pool,
// router, cache, and coalescer. The fields are obs metrics so
// RegisterMetrics can expose the live counters directly — Metrics
// snapshots and scrapes read the same atomics and can never disagree.
type counters struct {
	queries       obs.Counter
	batchQueries  obs.Counter
	cacheHits     obs.Counter
	cacheMisses   obs.Counter
	flightsShared obs.Counter
	coalesced     obs.Counter
	attempts      obs.Counter
	retries       obs.Counter
	failovers     obs.Counter
	hedges        obs.Counter
	hedgeWins     obs.Counter
	reconnects    obs.Counter
	errorsN       obs.Counter
	warmed        obs.Counter
	quotaRejects  obs.Counter
	authRejects   obs.Counter
	breakerTrips  obs.Counter

	storeServes     obs.Counter
	peerFills       obs.Counter
	peerFillErrors  obs.Counter
	backfills       obs.Counter
	artifactsServed obs.Counter
	storePushes     obs.Counter
	storePushErrors obs.Counter
	pushesAccepted  obs.Counter
}

// snapshot reads the counters into a Metrics value.
func (c *counters) snapshot() Metrics {
	return Metrics{
		Queries:       c.queries.Value(),
		BatchQueries:  c.batchQueries.Value(),
		CacheHits:     c.cacheHits.Value(),
		CacheMisses:   c.cacheMisses.Value(),
		FlightsShared: c.flightsShared.Value(),
		Coalesced:     c.coalesced.Value(),
		Attempts:      c.attempts.Value(),
		Retries:       c.retries.Value(),
		Failovers:     c.failovers.Value(),
		Hedges:        c.hedges.Value(),
		HedgeWins:     c.hedgeWins.Value(),
		Reconnects:    c.reconnects.Value(),
		Errors:        c.errorsN.Value(),
		Warmed:        c.warmed.Value(),
		QuotaRejects:  c.quotaRejects.Value(),
		AuthRejects:   c.authRejects.Value(),
		BreakerTrips:  c.breakerTrips.Value(),

		StoreServes:     c.storeServes.Value(),
		PeerFills:       c.peerFills.Value(),
		PeerFillErrors:  c.peerFillErrors.Value(),
		Backfills:       c.backfills.Value(),
		ArtifactsServed: c.artifactsServed.Value(),
		StorePushes:     c.storePushes.Value(),
		StorePushErrors: c.storePushErrors.Value(),
		PushesAccepted:  c.pushesAccepted.Value(),
	}
}

// RegisterMetrics exposes the gateway's live serving counters, latency
// distributions, and healthy-replica gauge on reg under lcakp_gateway_*
// names.
func (g *Gateway) RegisterMetrics(reg *obs.Registry) error {
	c := &g.counters
	for _, m := range []struct {
		name, help string
		metric     obs.Metric
	}{
		{"lcakp_gateway_queries_total", "point membership queries accepted", &c.queries},
		{"lcakp_gateway_batch_queries_total", "batch membership queries accepted", &c.batchQueries},
		{"lcakp_gateway_cache_hits_total", "answer-cache hits", &c.cacheHits},
		{"lcakp_gateway_cache_misses_total", "answer-cache misses", &c.cacheMisses},
		{"lcakp_gateway_flights_shared_total", "queries answered by a shared in-flight fetch", &c.flightsShared},
		{"lcakp_gateway_coalesced_total", "point queries folded into batch frames", &c.coalesced},
		{"lcakp_gateway_attempts_total", "replica RPC attempts", &c.attempts},
		{"lcakp_gateway_retries_total", "RPC re-sends after a failed attempt", &c.retries},
		{"lcakp_gateway_failovers_total", "retries that switched replica", &c.failovers},
		{"lcakp_gateway_hedges_total", "hedged duplicate RPCs fired", &c.hedges},
		{"lcakp_gateway_hedge_wins_total", "hedges whose answer arrived first", &c.hedgeWins},
		{"lcakp_gateway_reconnects_total", "replica unhealthy-to-healthy transitions", &c.reconnects},
		{"lcakp_gateway_query_errors_total", "queries that exhausted every attempt", &c.errorsN},
		{"lcakp_gateway_warmed_total", "cache entries preloaded by Warm", &c.warmed},
		{"lcakp_gateway_quota_rejects_total", "queries rejected by tenant quotas", &c.quotaRejects},
		{"lcakp_gateway_auth_rejects_total", "wire frames rejected by the authorizer", &c.authRejects},
		{"lcakp_gateway_breaker_trips_total", "replica circuit-breaker transitions to open", &c.breakerTrips},
		{"lcakp_gateway_store_serves_total", "queries answered from the artifact tier", &c.storeServes},
		{"lcakp_gateway_peer_fills_total", "whole artifacts fetched from owning peers", &c.peerFills},
		{"lcakp_gateway_peer_fill_errors_total", "peer artifact fetches that failed", &c.peerFillErrors},
		{"lcakp_gateway_backfills_total", "fetched artifacts persisted locally", &c.backfills},
		{"lcakp_gateway_artifacts_served_total", "MsgStoreFetch requests answered for peers", &c.artifactsServed},
		{"lcakp_store_pushes_total", "artifacts proactively pushed to the ring successor", &c.storePushes},
		{"lcakp_store_push_errors_total", "successor pushes that failed", &c.storePushErrors},
		{"lcakp_store_pushes_accepted_total", "pushed artifacts installed for peers", &c.pushesAccepted},
		{"lcakp_gateway_query_latency_seconds", "point-query fetch latency (cache misses; hits are not clock-sampled)", &g.lat},
		{"lcakp_gateway_rpc_latency_seconds", "successful replica RPC latency", &g.rpcLat},
		{"lcakp_gateway_healthy_replicas", "replicas currently passing health checks",
			obs.GaugeFunc(func() float64 { return float64(len(g.pool.healthySnapshot())) })},
	} {
		if err := reg.Register(m.name, m.help, m.metric); err != nil {
			return fmt.Errorf("gateway: register metrics: %w", err)
		}
	}

	// Breaker state per replica: 0 closed, 1 half-open, 2 open. The
	// label set is the fleet, fixed at New — bounded by construction.
	breakerVec := obs.NewGaugeVec("replica", len(g.pool.members)+1)
	for _, m := range g.pool.members {
		brk := m.brk
		if err := breakerVec.AttachFunc(m.addr, obs.GaugeFunc(func() float64 {
			return float64(brk.current())
		})); err != nil {
			return fmt.Errorf("gateway: register metrics: %w", err)
		}
	}
	if err := reg.Register("lcakp_gateway_breaker_state",
		"replica circuit-breaker state (0 closed, 1 half-open, 2 open)", breakerVec); err != nil {
		return fmt.Errorf("gateway: register metrics: %w", err)
	}

	// Per-tenant serving counters. The label set is the configured
	// tenant table, fixed at New — bounded by construction.
	for _, tv := range []struct {
		name, help string
		value      func(*tenant) *obs.Counter
	}{
		{"lcakp_gateway_tenant_queries_total", "point queries accepted, per tenant",
			func(t *tenant) *obs.Counter { return &t.c.queries }},
		{"lcakp_gateway_tenant_batch_queries_total", "batch queries accepted, per tenant",
			func(t *tenant) *obs.Counter { return &t.c.batchQueries }},
		{"lcakp_gateway_tenant_cache_hits_total", "answer-cache hits, per tenant",
			func(t *tenant) *obs.Counter { return &t.c.cacheHits }},
		{"lcakp_gateway_tenant_cache_misses_total", "answer-cache misses, per tenant",
			func(t *tenant) *obs.Counter { return &t.c.cacheMisses }},
		{"lcakp_gateway_tenant_quota_rejects_total", "quota-rejected queries, per tenant",
			func(t *tenant) *obs.Counter { return &t.c.quotaRejects }},
		{"lcakp_gateway_tenant_epoch_queries_total", "queries served at sealed (non-zero) epochs, per tenant",
			func(t *tenant) *obs.Counter { return &t.c.epochQueries }},
	} {
		vec := obs.NewCounterVec("tenant", len(g.tenants)+1)
		for id, t := range g.tenants {
			counter := tv.value(t)
			if err := vec.AttachFunc(id.String(), obs.CounterFunc(counter.Value)); err != nil {
				return fmt.Errorf("gateway: register metrics: %w", err)
			}
		}
		if err := reg.Register(tv.name, tv.help, vec); err != nil {
			return fmt.Errorf("gateway: register metrics: %w", err)
		}
	}

	// Per-tenant current epoch: a gauge, not a counter — quota and
	// accounting stay epoch-scoped without an unbounded per-epoch label
	// set (the epoch axis is the gauge's value, not a label).
	epochVec := obs.NewGaugeVec("tenant", len(g.tenants)+1)
	for id, t := range g.tenants {
		t := t
		if err := epochVec.AttachFunc(id.String(), obs.GaugeFunc(func() float64 {
			return float64(t.epoch.Load())
		})); err != nil {
			return fmt.Errorf("gateway: register metrics: %w", err)
		}
	}
	if err := reg.Register("lcakp_gateway_tenant_epoch",
		"current serving epoch per tenant (0 = pre-churn)", epochVec); err != nil {
		return fmt.Errorf("gateway: register metrics: %w", err)
	}

	// The mounted artifact store's own counters ride the same registry.
	if g.opts.Store != nil {
		if err := g.opts.Store.RegisterMetrics(reg, "lcakp_store"); err != nil {
			return fmt.Errorf("gateway: register metrics: %w", err)
		}
	}
	return nil
}
