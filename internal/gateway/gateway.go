// Package gateway is the consistency-preserving serving front door of
// the distributed deployment: one address that fans out to a fleet of
// LCA replica servers with connection pooling, health-checked
// failover, hedged requests, point-query coalescing, and a
// deterministic answer cache.
//
// Every feature is an application of the paper's central guarantee.
// Definition 2.2 makes the answered solution C(I, r) a pure function
// of the instance and the shared seed, and Theorem 4.1 (via the
// reproducible rule of Lemma 4.9) ensures every replica computes it:
// replicas are interchangeable bit-for-bit. Failover to another
// replica cannot change an answer; racing two replicas and keeping
// the first response cannot change an answer; caching an answer
// forever cannot serve a stale one (there is no staleness — answers
// are immutable); deduplicating concurrent identical queries cannot
// couple callers that expected different results (there are none).
// Serving-layer machinery that is delicate in stateful systems becomes
// trivially correct here — the operational payoff of the LCA model.
//
// A Gateway implements cluster.Backend, so cluster.NewQueryServer
// exposes it on the same wire protocol the replicas speak: clients
// cannot distinguish a gateway from a replica except by its latency
// and availability.
package gateway

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/obs"
)

// Defaults applied by Options.withDefaults.
const (
	// DefaultPoolSize is the idle-connection cap per replica.
	DefaultPoolSize = 4
	// DefaultCacheSize is the answer-cache capacity in entries.
	DefaultCacheSize = 1 << 16
	// DefaultMaxAttempts bounds per-query replica attempts.
	DefaultMaxAttempts = 3
	// DefaultRetryBackoff is the base of the exponential retry backoff.
	DefaultRetryBackoff = 2 * time.Millisecond
	// DefaultMaxBatch caps one coalesced batch frame.
	DefaultMaxBatch = 256
	// DefaultHealthInterval is the replica ping period.
	DefaultHealthInterval = 250 * time.Millisecond
)

// Options configures a Gateway.
type Options struct {
	// Replicas are the replica server addresses (at least one).
	Replicas []string
	// Instance identifies the served instance I and Seed the shared
	// LCA seed r; together they name the solution C(I, r) the fleet
	// answers from, and they key the answer cache. They carry no
	// behavior at the gateway — answers come from the replicas — but
	// distinct (Instance, Seed) deployments must not share cache keys.
	Instance uint64
	Seed     uint64
	// PoolSize caps idle pooled connections per replica (0 selects
	// DefaultPoolSize).
	PoolSize int
	// RPCTimeout bounds each replica round trip (0 selects
	// cluster.DefaultTimeout).
	RPCTimeout time.Duration
	// MaxAttempts bounds replica attempts per query, the first try
	// included (0 selects DefaultMaxAttempts).
	MaxAttempts int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (0 selects DefaultRetryBackoff).
	RetryBackoff time.Duration
	// HedgeDelay controls hedged requests: > 0 fires the hedge after a
	// fixed delay, 0 adapts the delay to the observed p95 latency, < 0
	// disables hedging.
	HedgeDelay time.Duration
	// CacheSize is the answer-cache capacity in entries (0 selects
	// DefaultCacheSize, < 0 disables caching).
	CacheSize int
	// BatchWindow is how long the first point query of a burst waits
	// for companions before its batch frame is sent (0 disables
	// coalescing).
	BatchWindow time.Duration
	// MaxBatch caps one coalesced batch (0 selects DefaultMaxBatch).
	MaxBatch int
	// HealthInterval is the replica ping period (0 selects
	// DefaultHealthInterval).
	HealthInterval time.Duration
	// RouteSeed seeds the router's operational randomness (replica
	// picks, backoff jitter). Purely operational: it cannot influence
	// any answer bit.
	RouteSeed uint64
	// Tracer, when set, opens one span per gateway query
	// ("gateway.query" / "gateway.batch") and propagates the trace to
	// the replica over the wire frame's trace header, so one client
	// query can be followed across the gateway→replica hop.
	Tracer *obs.Tracer
}

// withDefaults returns opts with zero values resolved.
func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = cluster.DefaultTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = DefaultHealthInterval
	}
	if o.RouteSeed == 0 {
		o.RouteSeed = 1
	}
	return o
}

// Gateway fronts a replica fleet behind a single Backend surface.
type Gateway struct {
	opts     Options
	counters counters
	pool     *pool
	router   *router
	cache    *answerCache // nil when caching is disabled
	coal     *coalescer   // nil when coalescing is disabled

	// lat records point-query fleet-fetch latency (cache misses; hits
	// skip the clock entirely); rpcLat records successful replica round
	// trips, fed by the router.
	lat    obs.Histogram
	rpcLat obs.Histogram

	closeOnce sync.Once
}

var _ cluster.Backend = (*Gateway)(nil)

// New builds a gateway over the configured replica fleet. Connections
// are dialed lazily, so New succeeds even while replicas are still
// starting; the health loop and per-query failover sort out who is
// reachable.
func New(opts Options) (*Gateway, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: %w: no replica addresses configured", ErrNoReplicas)
	}
	opts = opts.withDefaults()
	g := &Gateway{opts: opts}
	g.pool = newPool(opts.Replicas, opts.RPCTimeout, opts.PoolSize, opts.HealthInterval, &g.counters)
	g.router = newRouter(g.pool, &g.counters, opts.MaxAttempts, opts.RetryBackoff, opts.HedgeDelay, opts.RouteSeed)
	g.router.rpcHist = &g.rpcLat
	if opts.CacheSize > 0 {
		g.cache = newAnswerCache(opts.CacheSize)
	}
	if opts.BatchWindow > 0 {
		g.coal = newCoalescer(opts.BatchWindow, opts.MaxBatch, opts.RPCTimeout, g.router.call, &g.counters)
	}
	return g, nil
}

// key builds the cache key for item i.
func (g *Gateway) key(i int) Key {
	return Key{Instance: g.opts.Instance, Seed: g.opts.Seed, Item: i}
}

// fetchOne resolves one item through the coalescer (when enabled) or a
// direct single-index batch call, and records the fetch latency.
func (g *Gateway) fetchOne(ctx context.Context, i int) (answer bool, err error) {
	start := time.Now()
	if g.coal != nil {
		answer, err = g.coal.query(ctx, i)
	} else {
		var answers []bool
		if answers, err = g.router.call(ctx, []int{i}); err == nil {
			answer = answers[0]
		}
	}
	g.lat.Observe(time.Since(start))
	return answer, err
}

// InSolution answers one membership query: cache first, then a
// single-flight-deduplicated fetch from the fleet. Latency is observed
// on the fetch path only — a cache hit reads no clock, keeping the
// hit path's observability overhead at effectively zero (clock reads
// cost more than the hit itself on some hosts).
func (g *Gateway) InSolution(ctx context.Context, i int) (bool, error) {
	if g.opts.Tracer != nil {
		var span *obs.Span
		ctx, span = g.opts.Tracer.StartSpan(ctx, "gateway.query")
		defer span.End()
	}
	return g.inSolution(ctx, i)
}

// inSolution is InSolution without the tracing shell.
func (g *Gateway) inSolution(ctx context.Context, i int) (bool, error) {
	g.counters.queries.Add(1)
	if g.cache == nil {
		return g.fetchOne(ctx, i)
	}
	answer, oc, err := g.cache.do(ctx, g.key(i), func() (bool, error) {
		return g.fetchOne(ctx, i)
	})
	switch oc {
	case outcomeHit:
		g.counters.cacheHits.Add(1)
	case outcomeShared:
		g.counters.cacheMisses.Add(1)
		g.counters.flightsShared.Add(1)
	default:
		g.counters.cacheMisses.Add(1)
	}
	return answer, err
}

// InSolutionBatch answers a batch of membership queries, serving what
// it can from the cache and fetching the rest in one frame. Mixing
// cached and freshly fetched answers in one response is sound for the
// same reason failover is: there is exactly one answer per index
// (Theorem 4.1), however and whenever it was obtained.
func (g *Gateway) InSolutionBatch(ctx context.Context, indices []int) ([]bool, error) {
	if g.opts.Tracer != nil {
		var span *obs.Span
		ctx, span = g.opts.Tracer.StartSpan(ctx, "gateway.batch")
		defer span.End()
	}
	g.counters.batchQueries.Add(1)
	if len(indices) == 0 {
		return nil, nil
	}
	if g.cache == nil {
		return g.router.call(ctx, indices)
	}

	answers := make([]bool, len(indices))
	// positions gathers where each still-unknown item occurs (an item
	// may repeat within a batch; it is fetched once).
	positions := make(map[int][]int)
	var missing []int
	for pos, item := range indices {
		if hits, seen := positions[item]; seen {
			positions[item] = append(hits, pos)
			continue
		}
		if answer, ok := g.cache.get(g.key(item)); ok {
			g.counters.cacheHits.Add(1)
			answers[pos] = answer
			continue
		}
		g.counters.cacheMisses.Add(1)
		positions[item] = []int{pos}
		missing = append(missing, item)
	}
	if len(missing) == 0 {
		return answers, nil
	}
	fetched, err := g.router.call(ctx, missing)
	if err != nil {
		return nil, err
	}
	for k, item := range missing {
		g.cache.put(g.key(item), fetched[k])
		for _, pos := range positions[item] {
			answers[pos] = fetched[k]
		}
	}
	return answers, nil
}

// Ping reports reachability: it succeeds if any replica answers.
func (g *Gateway) Ping(ctx context.Context) error {
	var lastErr error
	for _, m := range g.pool.members {
		c, err := m.get(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		err = c.Ping(ctx)
		m.put(c)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return fmt.Errorf("gateway: ping: %w", lastErr)
}

// Healthy returns the addresses of currently healthy replicas.
func (g *Gateway) Healthy() []string {
	members := g.pool.healthySnapshot()
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.addr
	}
	return out
}

// Metrics returns a snapshot of the gateway's serving counters.
func (g *Gateway) Metrics() Metrics { return g.counters.snapshot() }

// Latency returns a snapshot of the point-query fetch latency
// distribution (cache misses reaching the fleet; cache hits are not
// clock-sampled).
func (g *Gateway) Latency() obs.Snapshot { return g.lat.Snapshot() }

// Warm preloads the answer cache with the given items, fetching the
// not-yet-resident ones from the fleet in MaxBatch-sized frames. It
// returns how many entries were actually fetched and cached (duplicate
// and already-resident items are skipped). Warming is sound for the
// usual reason: answers are immutable, so an entry loaded before any
// client asked can never be stale. Typical use is pre-warming the hot
// item range at startup so the first client burst hits the cache.
func (g *Gateway) Warm(ctx context.Context, items []int) (int, error) {
	if g.cache == nil {
		return 0, fmt.Errorf("gateway: warm: caching is disabled")
	}
	// Dedup and drop already-resident items before spending any RPCs.
	seen := make(map[int]struct{}, len(items))
	missing := make([]int, 0, len(items))
	for _, item := range items {
		if _, dup := seen[item]; dup {
			continue
		}
		seen[item] = struct{}{}
		if _, resident := g.cache.get(g.key(item)); resident {
			continue
		}
		missing = append(missing, item)
	}
	warmed := 0
	for len(missing) > 0 {
		chunk := missing
		if len(chunk) > g.opts.MaxBatch {
			chunk = chunk[:g.opts.MaxBatch]
		}
		missing = missing[len(chunk):]
		fetched, err := g.router.call(ctx, chunk)
		if err != nil {
			return warmed, fmt.Errorf("gateway: warm: %w", err)
		}
		for k, item := range chunk {
			g.cache.put(g.key(item), fetched[k])
		}
		warmed += len(chunk)
		g.counters.warmed.Add(int64(len(chunk)))
	}
	return warmed, nil
}

// Close flushes parked queries, stops the health loop, and closes all
// pooled connections. It is idempotent.
func (g *Gateway) Close() error {
	g.closeOnce.Do(func() {
		if g.coal != nil {
			g.coal.close()
		}
		g.pool.close()
	})
	return nil
}
