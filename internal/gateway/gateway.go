// Package gateway is the consistency-preserving serving front door of
// the distributed deployment: one address that fans out to a fleet of
// LCA replica servers with connection pooling, health-checked
// failover, hedged requests, point-query coalescing, and a
// deterministic answer cache.
//
// Every feature is an application of the paper's central guarantee.
// Definition 2.2 makes the answered solution C(I, r) a pure function
// of the instance and the shared seed, and Theorem 4.1 (via the
// reproducible rule of Lemma 4.9) ensures every replica computes it:
// replicas are interchangeable bit-for-bit. Failover to another
// replica cannot change an answer; racing two replicas and keeping
// the first response cannot change an answer; caching an answer
// forever cannot serve a stale one (there is no staleness — answers
// are immutable); deduplicating concurrent identical queries cannot
// couple callers that expected different results (there are none).
// Serving-layer machinery that is delicate in stateful systems becomes
// trivially correct here — the operational payoff of the LCA model.
//
// A Gateway implements cluster.Backend, so cluster.NewQueryServer
// exposes it on the same wire protocol the replicas speak: clients
// cannot distinguish a gateway from a replica except by its latency
// and availability.
package gateway

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/engine"
	"lcakp/internal/obs"
	"lcakp/internal/store"
)

// Defaults applied by Options.withDefaults.
const (
	// DefaultPoolSize is the idle-connection cap per replica.
	DefaultPoolSize = 4
	// DefaultCacheSize is the answer-cache capacity in entries.
	DefaultCacheSize = 1 << 16
	// DefaultMaxAttempts bounds per-query replica attempts.
	DefaultMaxAttempts = 3
	// DefaultRetryBackoff is the base of the exponential retry backoff.
	DefaultRetryBackoff = 2 * time.Millisecond
	// DefaultMaxBatch caps one coalesced batch frame.
	DefaultMaxBatch = 256
	// DefaultHealthInterval is the replica ping period.
	DefaultHealthInterval = 250 * time.Millisecond
	// DefaultBreakerThreshold is the consecutive-failure count that
	// trips a replica's circuit breaker open.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long a tripped breaker stays open
	// before a half-open probe is allowed.
	DefaultBreakerCooldown = time.Second
)

// Options configures a Gateway.
type Options struct {
	// Replicas are the replica server addresses (at least one).
	Replicas []string
	// Instance identifies the served instance I and Seed the shared
	// LCA seed r; together they name the solution C(I, r) the default
	// tenant answers from, and they key its slice of the answer cache.
	// The default tenant serves untenanted wire frames and the plain
	// InSolution/InSolutionBatch methods, and its outgoing frames stay
	// untenanted — byte-identical to pre-tenancy builds, so a
	// single-tenant gateway keeps working against old replicas.
	Instance uint64
	Seed     uint64
	// Tenants are the explicitly served namespaces beyond the default.
	// Their queries go out as tenanted (v3) frames, so the replicas
	// must be tenant-aware (cluster.MultiLCAServer or single-tenant
	// servers with a declared identity). An entry naming the default
	// (Instance, Seed) replaces the default tenant's config (attaching
	// a quota to it) while keeping its untenanted wire framing.
	Tenants []TenantOptions
	// Auth, when set, requires every wire frame resolved through
	// Resolve to carry an API key granted the addressed tenant.
	// In-process calls (the exported methods) are not authenticated —
	// the caller already holds the Gateway.
	Auth *Authorizer
	// PoolSize caps idle pooled connections per replica (0 selects
	// DefaultPoolSize).
	PoolSize int
	// RPCTimeout bounds each replica round trip (0 selects
	// cluster.DefaultTimeout).
	RPCTimeout time.Duration
	// MaxAttempts bounds replica attempts per query, the first try
	// included (0 selects DefaultMaxAttempts).
	MaxAttempts int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (0 selects DefaultRetryBackoff).
	RetryBackoff time.Duration
	// HedgeDelay controls hedged requests: > 0 fires the hedge after a
	// fixed delay, 0 adapts the delay to the observed p95 latency, < 0
	// disables hedging.
	HedgeDelay time.Duration
	// CacheSize is the answer-cache capacity in entries (0 selects
	// DefaultCacheSize, < 0 disables caching).
	CacheSize int
	// BatchWindow is how long the first point query of a burst waits
	// for companions before its batch frame is sent (0 disables
	// coalescing).
	BatchWindow time.Duration
	// MaxBatch caps one coalesced batch (0 selects DefaultMaxBatch).
	MaxBatch int
	// HealthInterval is the replica ping period (0 selects
	// DefaultHealthInterval).
	HealthInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's breaker (0 selects DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is the open dwell time before a half-open probe
	// (0 selects DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// RouteSeed seeds the router's operational randomness (replica
	// picks, backoff jitter). Purely operational: it cannot influence
	// any answer bit.
	RouteSeed uint64
	// Tracer, when set, opens one span per gateway query
	// ("gateway.query" / "gateway.batch") and propagates the trace to
	// the replica over the wire frame's trace header, so one client
	// query can be followed across the gateway→replica hop.
	Tracer *obs.Tracer
	// Store, when set, mounts the materialized artifact tier: cache
	// misses consult the local artifact store before the fleet,
	// WarmFromStore loads whole tenants from artifacts, and the gateway
	// serves its artifacts to peers over MsgStoreFetch
	// (cluster.ArtifactProvider).
	Store *store.Store
	// Peers are the other gateways' wire addresses in the peer-fill
	// ring. With a Store and at least one peer configured, a store miss
	// on a peer-owned (instance, seed, item) key fetches the owning
	// peer's whole artifact and backfills it locally before falling
	// back to replica fetch. Ignored without a Store.
	Peers []string
	// SelfAddr is this gateway's own advertised wire address in the
	// peer ring — required when Peers is non-empty, so every gateway
	// places itself and its peers identically on the ring.
	SelfAddr string
}

// withDefaults returns opts with zero values resolved.
func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = cluster.DefaultTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.CacheSize == 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = DefaultHealthInterval
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.RouteSeed == 0 {
		o.RouteSeed = 1
	}
	return o
}

// Gateway fronts a replica fleet behind a single Backend surface,
// multiplexing any number of tenants over one shared pool, cache, and
// router. The tenant set is fixed at New: each tenant owns its wire
// namespace, quota, coalescer, and counters, while connections and
// breakers stay per replica (replicas are multi-tenant).
type Gateway struct {
	opts     Options
	counters counters
	pool     *pool
	router   *router
	cache    *answerCache // nil when caching is disabled
	peerTier *peerTier    // nil unless Store and Peers are configured

	// def serves untenanted frames and the plain exported methods;
	// tenants indexes every served namespace (def included). The map is
	// read-only after New.
	def     *tenant
	tenants map[engine.TenantID]*tenant

	// lat records point-query fleet-fetch latency (cache misses; hits
	// skip the clock entirely); rpcLat records successful replica round
	// trips, fed by the router.
	lat    obs.Histogram
	rpcLat obs.Histogram

	closeOnce sync.Once
}

var (
	_ cluster.Backend       = (*Gateway)(nil)
	_ cluster.TenantBackend = (*Gateway)(nil)
	_ cluster.EpochBackend  = (*Gateway)(nil)
)

// New builds a gateway over the configured replica fleet. Connections
// are dialed lazily, so New succeeds even while replicas are still
// starting; the health loop and per-query failover sort out who is
// reachable.
func New(opts Options) (*Gateway, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: %w: no replica addresses configured", ErrNoReplicas)
	}
	opts = opts.withDefaults()
	g := &Gateway{opts: opts}
	g.pool = newPool(opts.Replicas, opts.RPCTimeout, opts.PoolSize, opts.HealthInterval,
		opts.BreakerThreshold, opts.BreakerCooldown, &g.counters)
	g.router = newRouter(g.pool, &g.counters, opts.MaxAttempts, opts.RetryBackoff, opts.HedgeDelay, opts.RouteSeed)
	g.router.rpcHist = &g.rpcLat
	if opts.CacheSize > 0 {
		g.cache = newAnswerCache(opts.CacheSize)
	}
	if opts.Store != nil && len(opts.Peers) > 0 {
		if opts.SelfAddr == "" {
			return nil, fmt.Errorf("gateway: peers configured without a self address for the ring")
		}
		g.peerTier = newPeerTier(g, opts.SelfAddr, opts.Peers, opts.RPCTimeout)
		// Proactive replication: every locally materialized artifact is
		// pushed to its tenant's ring successor, so the successor serves
		// the epoch with zero fetch-on-miss. Only Put fires the hook —
		// artifacts received from peers install via PutBytes, which never
		// does — so replication is one hop and cannot cascade.
		opts.Store.SetOnPut(g.peerTier.pushToSuccessor)
	}

	defID := engine.TenantID{Instance: opts.Instance, Seed: opts.Seed}
	g.tenants = make(map[engine.TenantID]*tenant, len(opts.Tenants)+1)
	g.def = g.newTenant(defID, false, TenantOptions{})
	g.tenants[defID] = g.def
	for _, to := range opts.Tenants {
		id := engine.TenantID{Instance: to.Instance, Seed: to.Seed}
		if id == defID {
			// Reconfigure the default tenant (typically to attach a
			// quota) while keeping its untenanted wire framing.
			if g.def.coal != nil {
				g.def.coal.close()
			}
			g.def = g.newTenant(defID, false, to)
			g.tenants[defID] = g.def
			continue
		}
		if _, dup := g.tenants[id]; dup {
			g.Close()
			return nil, fmt.Errorf("gateway: tenant %s configured twice", id)
		}
		g.tenants[id] = g.newTenant(id, true, to)
	}
	return g, nil
}

// Resolve is the cluster.TenantBackend seam: it authenticates the
// frame's API key (when an Authorizer is configured), then routes the
// frame to its tenant — the default for untenanted frames, the named
// tenant otherwise. Unknown tenants are rejected; so are authorized
// keys lacking a grant for the addressed tenant.
func (g *Gateway) Resolve(_ context.Context, q cluster.TenantQuery) (cluster.Backend, error) {
	id := g.def.id
	if q.Tenanted {
		id = q.ID
	}
	if g.opts.Auth != nil && !g.opts.Auth.Allow(q.Key, id) {
		g.counters.authRejects.Add(1)
		return nil, fmt.Errorf("%w: tenant %s", ErrUnauthorized, id)
	}
	t, ok := g.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", cluster.ErrUnknownTenant, id)
	}
	return t, nil
}

// ResolveEpoch is the cluster.EpochBackend seam: same authentication
// and tenant routing as Resolve, then the requested epoch is pinned —
// the sentinel resolves to the tenant's current epoch once, here, so
// every index of the frame (and any retry or hedge of it) is served
// from the same sealed instance. The returned Backend answers only at
// that epoch; the returned EpochID is what the response frame echoes.
func (g *Gateway) ResolveEpoch(ctx context.Context, q cluster.TenantQuery) (cluster.Backend, engine.EpochID, error) {
	b, err := g.Resolve(ctx, q)
	if err != nil {
		return nil, 0, err
	}
	t := b.(*tenant)
	ep := t.resolveEpoch(q.Epoch)
	return epochView{t: t, ep: ep}, ep, nil
}

// epochView is one tenant pinned to one concrete epoch: the Backend a
// resolved epoch-carrying frame is served from. Pinning at resolve
// time is what makes a batch frame epoch-atomic — every index goes
// through the same ep, even if the tenant rolls over mid-frame.
type epochView struct {
	t  *tenant
	ep engine.EpochID
}

func (v epochView) InSolution(ctx context.Context, i int) (bool, error) {
	return v.t.inSolutionAt(ctx, v.ep, i)
}

func (v epochView) InSolutionBatch(ctx context.Context, indices []int) ([]bool, error) {
	return v.t.inSolutionBatchAt(ctx, v.ep, indices)
}

// SetTenantEpoch advances tenant id's current serving epoch — the
// epoch its epoch-less and sentinel queries answer from. Regressions
// are refused: epochs are sealed in order, and rolling "back" would
// make the tenant's unpinned answers flap between instances.
// Already-pinned queries are untouched either way — epoch e's cache
// keys, artifacts, and frames remain valid and queryable forever.
func (g *Gateway) SetTenantEpoch(id engine.TenantID, ep engine.EpochID) error {
	t, ok := g.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %s", cluster.ErrUnknownTenant, id)
	}
	for {
		cur := t.epoch.Load()
		if uint64(ep) < cur {
			return fmt.Errorf("gateway: tenant %s: epoch regression %d -> %d", id, cur, ep)
		}
		if t.epoch.CompareAndSwap(cur, uint64(ep)) {
			return nil
		}
	}
}

// TenantEpoch reports tenant id's current serving epoch.
func (g *Gateway) TenantEpoch(id engine.TenantID) (engine.EpochID, bool) {
	t, ok := g.tenants[id]
	if !ok {
		return 0, false
	}
	return t.currentEpoch(), true
}

// InSolution answers one membership query for the default tenant:
// cache first, then a single-flight-deduplicated fetch from the fleet.
func (g *Gateway) InSolution(ctx context.Context, i int) (bool, error) {
	return g.def.InSolution(ctx, i)
}

// InSolutionEpoch answers one membership query for the default tenant
// pinned to epoch ep (engine.EpochCurrent resolves to the tenant's
// current epoch). A pinned query is served bit-identically forever:
// epoch e's answers are a pure function of (I_e, r), so rollover to
// e+1 cannot perturb them.
func (g *Gateway) InSolutionEpoch(ctx context.Context, ep engine.EpochID, i int) (bool, error) {
	return g.def.InSolutionEpoch(ctx, ep, i)
}

// InSolutionBatchEpoch answers a batch of membership queries for the
// default tenant, all pinned to one epoch.
func (g *Gateway) InSolutionBatchEpoch(ctx context.Context, ep engine.EpochID, indices []int) ([]bool, error) {
	return g.def.InSolutionBatchEpoch(ctx, ep, indices)
}

// InSolutionBatch answers a batch of membership queries for the
// default tenant, serving what it can from the cache and fetching the
// rest in one frame. Mixing cached and freshly fetched answers in one
// response is sound for the same reason failover is: there is exactly
// one answer per index (Theorem 4.1), however and whenever it was
// obtained.
func (g *Gateway) InSolutionBatch(ctx context.Context, indices []int) ([]bool, error) {
	return g.def.InSolutionBatch(ctx, indices)
}

// Tenants returns the served tenant IDs (the default included), sorted
// by instance then seed.
func (g *Gateway) Tenants() []engine.TenantID {
	out := make([]engine.TenantID, 0, len(g.tenants))
	for id := range g.tenants {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instance != out[j].Instance {
			return out[i].Instance < out[j].Instance
		}
		return out[i].Seed < out[j].Seed
	})
	return out
}

// TenantMetrics snapshots one tenant's serving counters.
func (g *Gateway) TenantMetrics(id engine.TenantID) (TenantMetrics, bool) {
	t, ok := g.tenants[id]
	if !ok {
		return TenantMetrics{}, false
	}
	return t.metrics(), true
}

// TenantExposition renders one served tenant's counters as a
// Prometheus-text exposition, answering tenant-scoped wire scrapes
// (cluster.TenantMetricsProvider) — the gateway-side counterpart of a
// multi-tenant replica's per-tenant engine scrape. The scrape is
// already tenant-scoped, so the names stay unlabeled.
func (g *Gateway) TenantExposition(id engine.TenantID) (string, error) {
	tm, ok := g.TenantMetrics(id)
	if !ok {
		return "", fmt.Errorf("%w: %s", cluster.ErrUnknownTenant, id)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lcakp_gateway_tenant_batch_queries_total %d\n", tm.BatchQueries)
	fmt.Fprintf(&b, "lcakp_gateway_tenant_cache_hits_total %d\n", tm.CacheHits)
	fmt.Fprintf(&b, "lcakp_gateway_tenant_cache_misses_total %d\n", tm.CacheMisses)
	fmt.Fprintf(&b, "lcakp_gateway_tenant_epoch %d\n", tm.Epoch)
	fmt.Fprintf(&b, "lcakp_gateway_tenant_epoch_queries_total %d\n", tm.EpochQueries)
	fmt.Fprintf(&b, "lcakp_gateway_tenant_queries_total %d\n", tm.Queries)
	fmt.Fprintf(&b, "lcakp_gateway_tenant_quota_rejects_total %d\n", tm.QuotaRejects)
	return b.String(), nil
}

// Ping reports reachability: it succeeds if any replica answers.
func (g *Gateway) Ping(ctx context.Context) error {
	var lastErr error
	for _, m := range g.pool.members {
		c, err := m.get(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		err = c.Ping(ctx)
		m.put(c)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return fmt.Errorf("gateway: ping: %w", lastErr)
}

// Healthy returns the addresses of currently healthy replicas.
func (g *Gateway) Healthy() []string {
	members := g.pool.healthySnapshot()
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.addr
	}
	return out
}

// Metrics returns a snapshot of the gateway's serving counters.
func (g *Gateway) Metrics() Metrics { return g.counters.snapshot() }

// Latency returns a snapshot of the point-query fetch latency
// distribution (cache misses reaching the fleet; cache hits are not
// clock-sampled).
func (g *Gateway) Latency() obs.Snapshot { return g.lat.Snapshot() }

// Warm preloads the answer cache with the given items for the default
// tenant, fetching the not-yet-resident ones from the fleet in
// MaxBatch-sized frames. It returns how many entries were actually
// fetched and cached (duplicate and already-resident items are
// skipped). Warming is sound for the usual reason: answers are
// immutable, so an entry loaded before any client asked can never be
// stale. Typical use is pre-warming the hot item range at startup so
// the first client burst hits the cache.
func (g *Gateway) Warm(ctx context.Context, items []int) (int, error) {
	return g.def.warm(ctx, items)
}

// WarmTenant is Warm for one configured tenant.
func (g *Gateway) WarmTenant(ctx context.Context, id engine.TenantID, items []int) (int, error) {
	t, ok := g.tenants[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", cluster.ErrUnknownTenant, id)
	}
	return t.warm(ctx, items)
}

// Close flushes parked queries, stops the health loop, and closes all
// pooled connections. It is idempotent.
func (g *Gateway) Close() error {
	g.closeOnce.Do(func() {
		for _, t := range g.tenants {
			if t.coal != nil {
				t.coal.close()
			}
		}
		if g.peerTier != nil {
			// Detach the push hook first so a Put racing Close cannot
			// dial through closing connections.
			g.opts.Store.SetOnPut(nil)
			g.peerTier.close()
		}
		g.pool.close()
	})
	return nil
}
