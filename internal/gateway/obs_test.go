package gateway

import (
	"context"
	"strings"
	"testing"

	"lcakp/internal/cluster"
	"lcakp/internal/core"
	"lcakp/internal/engine"
	"lcakp/internal/obs"
	"lcakp/internal/oracle"
	"lcakp/internal/workload"
)

func TestGatewayWarmPreloadsCache(t *testing.T) {
	addrs, _, baseline := testFleet(t, 500, 2)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1, MaxBatch: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	ctx := context.Background()
	items := make([]int, 0, 200)
	for i := 0; i < 200; i++ {
		items = append(items, i)
	}
	// Duplicates must be fetched once.
	items = append(items, 0, 1, 2)

	warmed, err := gw.Warm(ctx, items)
	if err != nil {
		t.Fatalf("Warm: %v", err)
	}
	if warmed != 200 {
		t.Errorf("Warm warmed %d entries, want 200 (duplicates skipped)", warmed)
	}
	if m := gw.Metrics(); m.Warmed != 200 {
		t.Errorf("Metrics().Warmed = %d, want 200", m.Warmed)
	}

	// Every warmed item must now be a cache hit with the correct answer.
	for _, i := range items[:200] {
		got, err := gw.InSolution(ctx, i)
		if err != nil {
			t.Fatalf("InSolution(%d): %v", i, err)
		}
		want, err := baseline.Query(ctx, i)
		if err != nil {
			t.Fatalf("baseline Query(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("InSolution(%d) = %v, want %v", i, got, want)
		}
	}
	if m := gw.Metrics(); m.CacheHits != 200 || m.CacheMisses != 0 {
		t.Errorf("after warm: hits=%d misses=%d, want 200 hits and 0 misses", m.CacheHits, m.CacheMisses)
	}

	// Re-warming resident items is free.
	if again, err := gw.Warm(ctx, items); err != nil || again != 0 {
		t.Errorf("second Warm = (%d, %v), want (0, nil)", again, err)
	}
}

func TestGatewayWarmWithoutCache(t *testing.T) {
	addrs, _, _ := testFleet(t, 50, 1)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, CacheSize: -1, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	if _, err := gw.Warm(context.Background(), []int{1, 2}); err == nil {
		t.Error("Warm with caching disabled succeeded, want error")
	}
}

// TestTracePropagatesGatewayToReplica is the acceptance check for trace
// propagation: one gateway query must yield at least two spans — the
// gateway's and the replica engine's, in different recorders on the two
// sides of the wire — sharing a single trace ID.
func TestTracePropagatesGatewayToReplica(t *testing.T) {
	gen, err := workload.Generate(workload.Spec{Name: "uniform", N: 300, Seed: 17})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	acc, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	lca, err := core.NewLCAKP(acc, testParams)
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	eng := engine.New(lca)
	replicaTracer := obs.NewTracer(64)
	eng.SetTracer(replicaTracer)
	srv, err := cluster.NewLCAServer("127.0.0.1:0", eng)
	if err != nil {
		t.Fatalf("NewLCAServer: %v", err)
	}
	defer srv.Close()

	gwTracer := obs.NewTracer(64)
	gw, err := New(Options{
		Replicas:   []string{srv.Addr()},
		Seed:       testParams.Seed,
		HedgeDelay: -1,
		Tracer:     gwTracer,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	if _, err := gw.InSolution(context.Background(), 7); err != nil {
		t.Fatalf("InSolution: %v", err)
	}

	gwSpans := gwTracer.Recorder().Spans()
	if len(gwSpans) != 1 || gwSpans[0].Name != "gateway.query" {
		t.Fatalf("gateway recorder = %+v, want one gateway.query span", gwSpans)
	}
	trace := gwSpans[0].Trace
	replicaSpans := replicaTracer.Recorder().Trace(trace)
	if len(replicaSpans) == 0 {
		t.Fatalf("replica recorder has no spans for trace %s; all spans: %+v",
			trace, replicaTracer.Recorder().Spans())
	}
	for _, s := range replicaSpans {
		if s.Name != "engine.querybatch" {
			t.Errorf("replica span %+v, want engine.querybatch", s)
		}
		if s.Parent != gwSpans[0].ID {
			t.Errorf("replica span parent = %s, want the gateway span %s", s.Parent, gwSpans[0].ID)
		}
	}

	// Cached repeats trace entirely inside the gateway: no replica hop,
	// but still one span per query.
	if _, err := gw.InSolution(context.Background(), 7); err != nil {
		t.Fatalf("cached InSolution: %v", err)
	}
	if got := gwTracer.Recorder().Total(); got != 2 {
		t.Errorf("gateway recorded %d spans after 2 queries, want 2", got)
	}
}

func TestGatewayRegisterMetricsExposition(t *testing.T) {
	addrs, _, _ := testFleet(t, 100, 1)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	reg := obs.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		t.Fatalf("RegisterMetrics: %v", err)
	}
	// Registering twice on one registry is a caller bug and must error,
	// not panic.
	if err := gw.RegisterMetrics(reg); err == nil {
		t.Error("second RegisterMetrics on the same registry succeeded")
	}

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := gw.InSolution(ctx, 3); err != nil {
			t.Fatalf("InSolution: %v", err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	// Latency samples the fetch path only: 5 queries = 1 miss + 4 hits,
	// and hits never read the clock.
	for _, want := range []string{
		"lcakp_gateway_queries_total 5",
		"lcakp_gateway_cache_hits_total 4",
		"lcakp_gateway_query_latency_seconds_count 1",
		"lcakp_gateway_healthy_replicas",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
}
