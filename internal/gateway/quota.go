package gateway

import (
	"sync"
	"time"
)

// tokenBucket is a per-tenant admission rate limiter: rate tokens per
// second refill up to burst, and each admitted query spends one token.
// Quotas are charged at admission — before the cache — because the
// resource being protected is the tenant's query budget in the sense
// of Definition 2.2 (how much of the fleet's oracle-access capacity a
// tenant may consume), not the marginal cost of one lookup.
type tokenBucket struct {
	rate  float64 // tokens per second
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newTokenBucket builds a bucket starting full. burst <= 0 selects a
// one-second burst (rate tokens, minimum 1).
func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b <= 0 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// take spends n tokens if the bucket holds them, reporting whether the
// caller is admitted. All-or-nothing: a batch either fits entirely or
// is rejected entirely (partial admission would answer some indices
// and reject others within one consistent batch, which helps nobody).
func (b *tokenBucket) take(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}
