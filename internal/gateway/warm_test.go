package gateway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/engine"
	"lcakp/internal/obs"
)

// scriptedBackend is a wire backend whose InSolutionBatch behavior is
// scripted per call, for driving warm-up failure paths deterministically:
// which chunk fails, which chunk blocks, which succeeds.
type scriptedBackend struct {
	mu    sync.Mutex
	calls int
	// failCall makes that batch call (1-based) return an error.
	failCall int
	// blockCall makes that batch call park until its context dies or
	// release closes, signaling entered first — the hook for mid-warm
	// cancellation. Cancellation reaches the client as its deadline
	// (the wire does not propagate cancels), so tests pair this with a
	// short RPCTimeout.
	blockCall int
	entered   chan struct{}
	release   chan struct{}
}

func (b *scriptedBackend) InSolution(context.Context, int) (bool, error) { return false, nil }

func (b *scriptedBackend) InSolutionBatch(ctx context.Context, indices []int) ([]bool, error) {
	b.mu.Lock()
	b.calls++
	c := b.calls
	b.mu.Unlock()
	switch c {
	case b.failCall:
		return nil, errors.New("synthetic chunk failure")
	case b.blockCall:
		close(b.entered)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-b.release:
			return make([]bool, len(indices)), nil
		}
	}
	return make([]bool, len(indices)), nil
}

// scriptedGateway mounts a scriptedBackend on a wire server and fronts
// it with a no-retry, no-hedge gateway so each warm chunk maps to
// exactly one backend call.
func scriptedGateway(t *testing.T, be *scriptedBackend, maxBatch int) *Gateway {
	t.Helper()
	srv, err := cluster.NewQueryServer("127.0.0.1:0", be)
	if err != nil {
		t.Fatalf("NewQueryServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	gw, err := New(Options{
		Replicas:    []string{srv.Addr()},
		Seed:        testParams.Seed,
		HedgeDelay:  -1,
		MaxAttempts: 1,
		MaxBatch:    maxBatch,
		RPCTimeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw
}

func TestWarmTenantUnknownTenant(t *testing.T) {
	addrs, _, _ := testFleet(t, 20, 1)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()
	bogus := engine.TenantID{Instance: 999, Seed: 999}
	if _, err := gw.WarmTenant(context.Background(), bogus, []int{0, 1}); !errors.Is(err, cluster.ErrUnknownTenant) {
		t.Fatalf("WarmTenant(unknown) = %v, want ErrUnknownTenant", err)
	}
}

// TestWarmPartialFailureContinues pins the warm-up failure contract: a
// failed chunk does not abort the remaining chunks, and the partial
// failure surfaces as a *WarmError with exact item and chunk counts —
// not just as a silently smaller return value.
func TestWarmPartialFailureContinues(t *testing.T) {
	be := &scriptedBackend{failCall: 2}
	gw := scriptedGateway(t, be, 4)

	items := make([]int, 12) // 3 chunks of 4
	for i := range items {
		items[i] = i
	}
	tracer := obs.NewTracer(16)
	ctx, span := tracer.StartSpan(context.Background(), "test.warm")
	warmed, err := gw.Warm(ctx, items)
	span.End()

	if warmed != 8 {
		t.Errorf("warmed = %d, want 8 (chunks 1 and 3)", warmed)
	}
	var we *WarmError
	if !errors.As(err, &we) {
		t.Fatalf("Warm error = %v (%T), want *WarmError", err, err)
	}
	if we.Warmed != 8 || we.Failed != 4 || we.FailedChunks != 1 {
		t.Errorf("WarmError = %+v, want Warmed=8 Failed=4 FailedChunks=1", we)
	}
	if !errors.Is(err, cluster.ErrRemote) {
		t.Errorf("WarmError does not unwrap to the chunk failure: %v", err)
	}
	if m := gw.Metrics(); m.Warmed != 8 {
		t.Errorf("Metrics().Warmed = %d, want 8", m.Warmed)
	}
	// The items of the surviving chunks are resident; the failed chunk's
	// are not.
	for i := 0; i < 12; i++ {
		_, resident := gw.cache.get(Key{Instance: 0, Seed: testParams.Seed, Item: i})
		if want := i < 4 || i >= 8; resident != want {
			t.Errorf("item %d resident = %v, want %v", i, resident, want)
		}
	}
	// The traced warm-up shows one cache_fill event per warmed batch and
	// one warn event for the failed chunk.
	var fills, warns int
	for _, s := range tracer.Recorder().Spans() {
		for _, e := range s.Events {
			switch e.Name {
			case "gateway.cache_fill":
				fills++
			case "gateway.warm_chunk_failed":
				warns++
				if e.Level != obs.LevelWarn {
					t.Errorf("warm_chunk_failed level = %v, want warn", e.Level)
				}
			}
		}
	}
	if fills != 2 || warns != 1 {
		t.Errorf("span events: %d cache_fill, %d warm_chunk_failed; want 2 and 1", fills, warns)
	}
}

// TestWarmCancellationMidWarm pins the one failure that DOES stop the
// loop: a dead context. Chunks already fetched stay cached; every
// chunk not yet attempted is charged to the failure count so the
// WarmError reports the true shortfall.
func TestWarmCancellationMidWarm(t *testing.T) {
	be := &scriptedBackend{blockCall: 2, entered: make(chan struct{}), release: make(chan struct{})}
	defer close(be.release) // free the parked server handler
	gw := scriptedGateway(t, be, 4)

	items := make([]int, 12)
	for i := range items {
		items[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-be.entered // second chunk is in flight
		cancel()
	}()
	warmed, err := gw.Warm(ctx, items)
	if warmed != 4 {
		t.Errorf("warmed = %d, want 4 (first chunk only)", warmed)
	}
	var we *WarmError
	if !errors.As(err, &we) {
		t.Fatalf("Warm error = %v (%T), want *WarmError", err, err)
	}
	if we.Warmed != 4 || we.Failed != 8 {
		t.Errorf("WarmError = %+v, want Warmed=4 Failed=8 (in-flight chunk plus never-attempted chunk)", we)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("WarmError does not unwrap to context.Canceled: %v", err)
	}
}

// TestWarmConcurrentWithQueries races WarmTenant against live query
// traffic over the same item range — run under -race, this is the
// warm-vs-serve data-race check, and bit-exactness must hold
// throughout (warming can never publish a wrong or torn answer,
// because there is only one right answer per key).
func TestWarmConcurrentWithQueries(t *testing.T) {
	const n = 200
	addrs, _, baseline := testFleet(t, n, 2)
	gw, err := New(Options{Replicas: addrs, Seed: testParams.Seed, HedgeDelay: -1, MaxBatch: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	ctx := context.Background()
	want := make([]bool, n)
	for i := range want {
		if want[i], err = baseline.Query(ctx, i); err != nil {
			t.Fatalf("baseline Query(%d): %v", i, err)
		}
	}
	id := engine.TenantID{Instance: 0, Seed: testParams.Seed}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := gw.WarmTenant(ctx, id, items); err != nil {
			t.Errorf("WarmTenant: %v", err)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 300; q++ {
				i := (w*41 + q*13) % n
				got, err := gw.InSolution(ctx, i)
				if err != nil {
					t.Errorf("InSolution(%d): %v", i, err)
					return
				}
				if got != want[i] {
					t.Errorf("InSolution(%d) = %v during warm, want %v", i, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
