package gateway

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Key identifies one immutable answer bit: which instance, which
// shared seed, which epoch of the instance, which item. Definition 2.2
// makes the answered solution C(I_e, r) a pure function of (I_e, r),
// so the tuple below fully determines the answer — the property that
// lets the cache skip invalidation entirely, even under churn: sealing
// epoch e+1 creates new keys rather than invalidating old ones, so a
// query pinned to epoch e keeps hitting e's entries forever. Entries
// are only ever evicted for space, never for staleness.
type Key struct {
	// Instance identifies the instance I (the workload generation seed
	// in this repo's deployments; any stable instance fingerprint
	// works).
	Instance uint64
	// Seed is the shared LCA seed r.
	Seed uint64
	// Epoch is the instance version e (0 = the implicit pre-churn
	// epoch, preserving every pre-epoch key unchanged).
	Epoch uint64
	// Item is the queried index.
	Item int
}

// cacheShardCount is the number of independently locked LRU shards.
// A power of two so the shard pick is a mask.
const cacheShardCount = 16

// answerCache is a sharded LRU of answer bits with single-flight
// deduplication of concurrent misses on the same key.
type answerCache struct {
	shards [cacheShardCount]cacheShard
}

// cacheShard is one lock domain: an LRU map plus the in-flight table.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*list.Element
	order    *list.List // front = most recently used
	flights  map[Key]*flight
}

// cacheEntry is one resident answer.
type cacheEntry struct {
	key    Key
	answer bool
}

// flight is one in-progress computation of a key's answer; joiners
// wait on done and read answer/err afterwards.
type flight struct {
	done   chan struct{}
	answer bool
	err    error
}

// newAnswerCache builds a cache holding roughly capacity entries in
// total (split evenly across shards, minimum one per shard).
func newAnswerCache(capacity int) *answerCache {
	perShard := capacity / cacheShardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &answerCache{}
	for s := range c.shards {
		c.shards[s] = cacheShard{
			capacity: perShard,
			entries:  make(map[Key]*list.Element),
			order:    list.New(),
			flights:  make(map[Key]*flight),
		}
	}
	return c
}

// shard picks the shard for k by FNV-1a over the key fields —
// deterministic, so a replayed query stream exercises identical shard
// and eviction behavior.
func (c *answerCache) shard(k Key) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [4]uint64{k.Instance, k.Seed, k.Epoch, uint64(k.Item)} {
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= prime64
		}
	}
	return &c.shards[h&(cacheShardCount-1)]
}

// get returns the cached answer for k, if resident, and refreshes its
// recency.
func (c *answerCache) get(k Key) (answer, ok bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		return false, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).answer, true
}

// put stores k's answer, evicting the least-recently-used entry if the
// shard is full.
func (c *answerCache) put(k Key, answer bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeLocked(k, answer)
}

// storeLocked inserts or refreshes an entry; the shard lock is held.
func (s *cacheShard) storeLocked(k Key, answer bool) {
	if el, ok := s.entries[k]; ok {
		// Answers are immutable, so a re-store can only repeat the same
		// bit; just refresh recency.
		s.order.MoveToFront(el)
		return
	}
	s.entries[k] = s.order.PushFront(&cacheEntry{key: k, answer: answer}) //lint:alloc insert path: one entry per newly cached answer; the hit path allocates nothing
	for s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
	}
}

// outcome classifies how do() obtained its answer, for the metrics
// split.
type outcome uint8

const (
	outcomeHit    outcome = iota // answer was resident
	outcomeShared                // joined another caller's flight
	outcomeLed                   // this caller ran fn
)

// do returns k's answer, computing it with fn on a miss. Concurrent
// calls for the same key share one fn invocation (single-flight): the
// first caller leads, the rest wait. Sharing is safe with certainty —
// per Theorem 4.1 every correct computation of k yields the same bit —
// so dedup cannot change any caller's answer, only its cost. A leader
// error is returned to every waiter and nothing is cached; joiners
// whose own ctx fires stop waiting and return ctx's error.
func (c *answerCache) do(ctx context.Context, k Key, fn func() (bool, error)) (bool, outcome, error) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		answer := el.Value.(*cacheEntry).answer
		s.mu.Unlock()
		return answer, outcomeHit, nil
	}
	if f, ok := s.flights[k]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.answer, outcomeShared, f.err
		case <-ctx.Done():
			return false, outcomeShared, fmt.Errorf("gateway: wait for shared flight: %w", ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})} //lint:alloc miss path: one single-flight record per uncached key
	s.flights[k] = f
	s.mu.Unlock()

	f.answer, f.err = fn()
	s.mu.Lock()
	delete(s.flights, k)
	if f.err == nil {
		s.storeLocked(k, f.answer)
	}
	s.mu.Unlock()
	close(f.done)
	return f.answer, outcomeLed, f.err
}

// len reports the total number of resident entries (test hook).
func (c *answerCache) len() int {
	total := 0
	for s := range c.shards {
		c.shards[s].mu.Lock()
		total += c.shards[s].order.Len()
		c.shards[s].mu.Unlock()
	}
	return total
}
