package gateway

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/engine"
	"lcakp/internal/obs"
	"lcakp/internal/rng"
)

// ErrNoReplicas indicates that no replica could be selected for a
// query (empty fleet).
var ErrNoReplicas = errors.New("gateway: no replicas available")

// router picks replicas (power-of-two-choices over in-flight load),
// retries failed attempts with exponential backoff, and optionally
// hedges slow requests with a duplicate to a second replica.
//
// Every aggressive trick here leans on the same theorem: replicas
// sharing a seed answer identically (Theorem 4.1), so retrying on a
// different replica, racing two replicas, or mixing answers from
// several replicas within one batch can never produce an inconsistent
// response — failover and hedging are pure latency/availability
// plays with no correctness surface.
type router struct {
	pool     *pool
	counters *counters

	maxAttempts int
	backoff     time.Duration
	// hedge > 0 is a fixed hedge delay; 0 selects the adaptive p95
	// delay; < 0 disables hedging.
	hedge time.Duration
	lat   *latencyWindow
	// rpcHist, when set, additionally records successful RPC latencies
	// for exposition (the window above only feeds the adaptive hedge).
	rpcHist *obs.Histogram

	// mu guards src: replica picks and backoff jitter. This randomness
	// is operational only — it can never affect an answer bit.
	mu  sync.Mutex
	src *rng.Source
}

// newRouter wires a router over the pool.
func newRouter(p *pool, c *counters, maxAttempts int, backoff, hedge time.Duration, routeSeed uint64) *router {
	return &router{
		pool:        p,
		counters:    c,
		maxAttempts: maxAttempts,
		backoff:     backoff,
		hedge:       hedge,
		lat:         &latencyWindow{},
		src:         rng.New(routeSeed).Derive("gateway-router"),
	}
}

// retryable reports whether an attempt error is worth a retry on
// another replica. Application-level responses (ErrRemote) are
// deterministic — by Definition 2.2 every replica would answer the
// same — so retrying them elsewhere only wastes attempts. Context
// expiry means the caller is gone. Everything else is a transport
// fault and a failover candidate.
func retryable(err error) bool {
	switch {
	case errors.Is(err, cluster.ErrRemote),
		errors.Is(err, cluster.ErrBadMessage),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// call answers one batch of indices for the gateway's default tenant.
func (r *router) call(ctx context.Context, indices []int) ([]bool, error) {
	return r.callTenant(ctx, nil, indices)
}

// callTenant answers one batch of indices, retrying across replicas
// until an answer arrives or attempts run out. wireID, when non-nil,
// namespaces each frame to that tenant (v3 framing); nil frames stay
// untenanted — byte-identical to pre-tenancy builds, which is what the
// implicit default tenant of a single-tenant gateway emits.
func (r *router) callTenant(ctx context.Context, wireID *engine.TenantID, indices []int) ([]bool, error) {
	return r.callTenantEpoch(ctx, wireID, nil, indices)
}

// callTenantEpoch is callTenant with an optional epoch pin. epochPin,
// when non-nil, stamps every frame with that concrete epoch (v4
// framing), so failover, retries, and hedges all re-ask for the SAME
// sealed (I_e, r) — a mid-rollover replica switch cannot mix epochs.
// nil keeps the exact pre-epoch framing.
func (r *router) callTenantEpoch(ctx context.Context, wireID *engine.TenantID, epochPin *engine.EpochID, indices []int) ([]bool, error) {
	var lastErr error
	var lastFailed *member
	for attempt := 0; attempt < r.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			lastErr = fmt.Errorf("gateway: query aborted: %w", err)
			break
		}
		m := r.pick(lastFailed)
		if m == nil {
			lastErr = ErrNoReplicas
			break
		}
		if attempt > 0 {
			r.counters.retries.Add(1)
			if m != lastFailed {
				r.counters.failovers.Add(1)
				//lint:alloc traced-only decision event on the retry path; the failed RPC it annotates cost a full timeout
				obs.AddWarnEvent(ctx, "gateway.failover",
					obs.String("to", m.addr), obs.Int("attempt", int64(attempt)))
			} else {
				//lint:alloc traced-only decision event on the retry path
				obs.AddWarnEvent(ctx, "gateway.retry",
					obs.String("replica", m.addr), obs.Int("attempt", int64(attempt)))
			}
		}
		answers, err := r.callMember(ctx, m, wireID, epochPin, indices)
		if err == nil {
			return answers, nil
		}
		lastErr = err
		if !retryable(err) {
			break
		}
		if m.markDown() {
			//lint:alloc traced-only decision event on the failure path
			obs.AddWarnEvent(ctx, "gateway.breaker_open", obs.String("replica", m.addr))
		}
		lastFailed = m
		if err := r.sleepBackoff(ctx, attempt); err != nil {
			lastErr = err
			break
		}
	}
	r.counters.errorsN.Add(1)
	return nil, lastErr
}

// sleepBackoff waits the exponential backoff for the given attempt
// (with up to 50% jitter), aborting early if ctx fires.
func (r *router) sleepBackoff(ctx context.Context, attempt int) error {
	if r.backoff <= 0 {
		return nil
	}
	d := r.backoff << attempt
	r.mu.Lock()
	jitter := time.Duration(r.src.Float64() * float64(d) / 2)
	r.mu.Unlock()
	timer := time.NewTimer(d + jitter)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("gateway: backoff aborted: %w", ctx.Err())
	}
}

// pick selects the target replica: two distinct uniformly random
// healthy members, keeping the one with fewer in-flight requests
// (power-of-two-choices). A member that just failed is avoided when an
// alternative exists; if no member is healthy, a random one is tried
// anyway — the health loop may simply not have noticed a recovery yet,
// and a stale "down" bit must not make the whole gateway refuse
// service while any replica might answer.
func (r *router) pick(avoid *member) *member {
	// Preference order, allocation-free (the per-pick candidate
	// snapshot used to be the routing path's only heap traffic):
	// healthy-minus-avoided, any healthy, anyone-minus-avoided, anyone.
	if m := r.pickEligible(avoid, true); m != nil {
		return m
	}
	if m := r.pickEligible(nil, true); m != nil {
		return m
	}
	if m := r.pickEligible(avoid, false); m != nil {
		return m
	}
	return r.pickEligible(nil, false)
}

// pickEligible runs power-of-two-choices over the members that pass
// the healthyOnly filter and are not the avoided one. Instead of
// snapshotting candidates it counts them and re-scans by ordinal; a
// breaker flipping between the passes at worst biases one pick, which
// the next attempt's own scan absorbs.
func (r *router) pickEligible(avoid *member, healthyOnly bool) *member {
	count := 0
	for _, m := range r.pool.members {
		if m != avoid && (!healthyOnly || m.brk.current() == breakerClosed) {
			count++
		}
	}
	switch count {
	case 0:
		return nil
	case 1:
		return r.nthEligible(0, avoid, healthyOnly)
	}
	r.mu.Lock()
	i := r.src.Intn(count)
	j := r.src.Intn(count - 1)
	r.mu.Unlock()
	if j >= i { // draw j from the slots excluding i
		j++
	}
	a, b := r.nthEligible(i, avoid, healthyOnly), r.nthEligible(j, avoid, healthyOnly)
	if a == nil {
		return b
	}
	if b != nil && b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// nthEligible returns the n-th (0-based) member passing the filter, or
// nil if the eligible set shrank below n+1 since it was counted.
func (r *router) nthEligible(n int, avoid *member, healthyOnly bool) *member {
	for _, m := range r.pool.members {
		if m == avoid || (healthyOnly && m.brk.current() != breakerClosed) {
			continue
		}
		if n == 0 {
			return m
		}
		n--
	}
	return nil
}

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	answers []bool
	err     error
	member  *member
	hedged  bool
}

// callMember issues the RPC to m, optionally racing a hedge replica:
// if no answer has arrived after the hedge delay, the same request is
// fired at a second replica and the first successful answer wins.
// Racing is consistency-safe because both replicas compute the same
// C(I, r) (Lemma 4.9 makes the shared rule reproducible across
// replicas); the loser's answer is discarded unread.
func (r *router) callMember(ctx context.Context, m *member, wireID *engine.TenantID, epochPin *engine.EpochID, indices []int) ([]bool, error) {
	r.counters.attempts.Add(1)
	delay := r.hedgeDelay()
	if delay <= 0 {
		res := r.issue(ctx, m, wireID, epochPin, indices, false)
		if res.err != nil && retryable(res.err) {
			if m.markDown() {
				//lint:alloc traced-only decision event on the failure path
				obs.AddWarnEvent(ctx, "gateway.breaker_open", obs.String("replica", m.addr))
			}
		}
		return res.answers, res.err
	}

	ch := make(chan attemptResult, 2) //lint:alloc hedged-mode rendezvous: one channel per RPC against a wire round trip
	//lint:alloc hedged-mode attempt goroutine; the RPC it carries costs ~3 orders of magnitude more
	go func() { ch <- r.issue(ctx, m, wireID, epochPin, indices, false) }()
	timer := time.NewTimer(delay)
	defer timer.Stop()

	outstanding := 1
	hedged := false
	var firstErr error
	for outstanding > 0 {
		select {
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			m2 := r.pick(m)
			if m2 == nil || m2 == m {
				continue
			}
			r.counters.hedges.Add(1)
			r.counters.attempts.Add(1)
			outstanding++
			//lint:alloc traced-only decision event; fires at most once per hedged RPC, on the p95 tail only
			obs.AddWarnEvent(ctx, "gateway.hedge",
				obs.String("primary", m.addr), obs.String("hedge", m2.addr))
			//lint:alloc fires at most once per hedged RPC, on the p95 tail only
			go func() { ch <- r.issue(ctx, m2, wireID, epochPin, indices, true) }()
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if res.hedged {
					r.counters.hedgeWins.Add(1)
				}
				return res.answers, nil
			}
			if retryable(res.err) {
				if res.member.markDown() {
					//lint:alloc traced-only decision event on the failure path
					obs.AddWarnEvent(ctx, "gateway.breaker_open", obs.String("replica", res.member.addr))
				}
			}
			if firstErr == nil {
				firstErr = res.err
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("gateway: query aborted: %w", ctx.Err())
		}
	}
	return nil, firstErr
}

// issue performs one RPC on one checked-out connection and feeds the
// latency window (and the member's breaker) on success. An epoch pin
// selects the v4 epoch-flagged call; the served-epoch echo is the pin
// itself (the replica either serves exactly that epoch or errors), so
// it needs no further inspection here.
func (r *router) issue(ctx context.Context, m *member, wireID *engine.TenantID, epochPin *engine.EpochID, indices []int, hedged bool) attemptResult {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	// Each replica RPC attempt is one probe in the gateway span's
	// Def 2.2 cost ledger (the replica's own oracle accesses are charged
	// to its engine span in the same trace).
	obs.AddProbes(ctx, 1)
	c, err := m.get(ctx)
	if err != nil {
		return attemptResult{err: err, member: m, hedged: hedged}
	}
	start := time.Now()
	var answers []bool
	switch {
	case epochPin != nil && wireID != nil:
		answers, _, err = c.InSolutionBatchEpochTenant(ctx, *wireID, *epochPin, indices)
	case epochPin != nil:
		answers, _, err = c.InSolutionBatchEpoch(ctx, *epochPin, indices)
	case wireID != nil:
		answers, err = c.InSolutionBatchTenant(ctx, *wireID, indices)
	default:
		answers, err = c.InSolutionBatch(ctx, indices)
	}
	m.put(c)
	if err == nil {
		d := time.Since(start)
		r.lat.add(d)
		if r.rpcHist != nil {
			r.rpcHist.ObserveExemplar(d, obs.TraceIDFromContext(ctx), "")
		}
		m.markUp()
	}
	return attemptResult{answers: answers, err: err, member: m, hedged: hedged}
}

// hedgeDelay resolves the delay before a hedge fires: the configured
// fixed value, or (when adaptive) the p95 of recently observed RPC
// latencies — hedges then target precisely the slowest ~5% of
// requests, keeping the duplicate-work rate bounded.
func (r *router) hedgeDelay() time.Duration {
	if r.hedge > 0 {
		return r.hedge
	}
	if r.hedge < 0 {
		return 0
	}
	p95 := r.lat.p95()
	if p95 <= 0 {
		return 0 // not enough signal yet; no hedging
	}
	const floor = 200 * time.Microsecond
	if p95 < floor {
		return floor
	}
	return p95
}

// latencyWindowSize bounds the latency ring buffer.
const latencyWindowSize = 128

// minLatencySamples is the observation count below which the adaptive
// hedge stays off.
const minLatencySamples = 20

// latencyWindow is a fixed-size ring of recent successful RPC
// latencies.
type latencyWindow struct {
	mu  sync.Mutex
	buf [latencyWindowSize]time.Duration
	n   int // total observations (saturates at len(buf) for reads)
	idx int
}

// add records one latency.
func (w *latencyWindow) add(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.idx] = d
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// p95 returns the 95th-percentile latency of the window, or 0 when
// fewer than minLatencySamples observations exist.
func (w *latencyWindow) p95() time.Duration {
	w.mu.Lock()
	n := w.n
	vals := make([]time.Duration, n) //lint:alloc adaptive-hedge percentile over a bounded 64-entry window, per hedged RPC
	copy(vals, w.buf[:n])
	w.mu.Unlock()
	if n < minLatencySamples {
		return 0
	}
	//lint:alloc sort.Slice boxing over the bounded percentile window; dominated by the RPC it tunes
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[(n*95)/100]
}
