package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcakp/internal/cluster"
	"lcakp/internal/core"
	"lcakp/internal/engine"
	"lcakp/internal/obs"
	"lcakp/internal/oracle"
	"lcakp/internal/workload"
)

// multiEpsilon is the LCA epsilon shared by every tenant replica and
// every local baseline in the multi-tenant tests.
const multiEpsilon = 0.3

// testMultiFleet starts k tenant-aware replica servers, each with its
// own TenantTable over the same two in-process instances (hashes 1 and
// 2), and returns their addresses plus the instance oracles for
// building baselines.
func testMultiFleet(t testing.TB, n, k int) (addrs []string, servers []*cluster.MultiLCAServer, instances map[uint64]*oracle.SliceOracle) {
	t.Helper()
	instances = make(map[uint64]*oracle.SliceOracle)
	for _, hash := range []uint64{1, 2} {
		gen, err := workload.Generate(workload.Spec{Name: "uniform", N: n, Seed: hash * 31})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		acc, err := oracle.NewSliceOracle(gen.Float)
		if err != nil {
			t.Fatalf("NewSliceOracle: %v", err)
		}
		instances[hash] = acc
	}
	factory := func(_ context.Context, id engine.TenantID) (engine.TenantState, error) {
		acc, ok := instances[id.Instance]
		if !ok {
			return engine.TenantState{}, fmt.Errorf("no instance with hash %d", id.Instance)
		}
		lca, err := core.NewLCAKP(acc, core.Params{Epsilon: multiEpsilon, Seed: id.Seed})
		if err != nil {
			return engine.TenantState{}, err
		}
		return engine.TenantState{Engine: engine.New(lca)}, nil
	}
	for r := 0; r < k; r++ {
		table := engine.NewTenantTable(factory, 8)
		srv, err := cluster.NewMultiLCAServer("127.0.0.1:0", table)
		if err != nil {
			t.Fatalf("NewMultiLCAServer: %v", err)
		}
		t.Cleanup(func() { srv.Close(); table.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, servers, instances
}

// multiBaseline computes the reference answer vector for one tenant
// with a fresh local replica — the bits every gateway answer for that
// tenant must match.
func multiBaseline(t testing.TB, acc *oracle.SliceOracle, seed uint64, n int) []bool {
	t.Helper()
	lca, err := core.NewLCAKP(acc, core.Params{Epsilon: multiEpsilon, Seed: seed})
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	answers := make([]bool, n)
	for i := range answers {
		in, err := lca.Query(context.Background(), i)
		if err != nil {
			t.Fatalf("Query(%d): %v", i, err)
		}
		answers[i] = in
	}
	return answers
}

// isRemoteQuotaReject reports whether err is the wire image of
// ErrQuotaExceeded.
func isRemoteQuotaReject(err error) bool {
	return errors.Is(err, cluster.ErrRemote) && strings.Contains(err.Error(), "quota exceeded")
}

// scrapeValue pulls one rendered sample line's value out of a
// Prometheus text body, -1 when the line is absent.
func scrapeValue(body, line string) float64 {
	for _, l := range strings.Split(body, "\n") {
		if !strings.HasPrefix(l, line+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(l, line+" "), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestMultiTenantE2E is the acceptance run for the tenancy refactor:
// two tenants (distinct instances AND distinct seeds) share one
// gateway and one tenant-aware replica fleet; thousands of interleaved
// authenticated queries from concurrent clients — with a replica
// killed mid-stream and a quota throttling one tenant — must all match
// their own tenant's local baseline bit for bit, and the per-tenant
// accounting must surface on a /metrics scrape.
func TestMultiTenantE2E(t *testing.T) {
	const (
		n          = 200 // instance size
		itemRange  = 64  // query key space (small, to force cache hits)
		workers    = 4   // per tenant
		perWorker  = 1000
		quotaRate  = 200 // tenant B admission rate (queries/s)
		quotaBurst = 80
	)
	addrs, servers, instances := testMultiFleet(t, n, 3)
	tenantA := engine.TenantID{Instance: 1, Seed: 2}
	tenantB := engine.TenantID{Instance: 2, Seed: 5}
	// Untenanted (pre-v3) frames from the gateway's default tenant land
	// on tenant A at the replicas.
	for _, srv := range servers {
		srv.SetDefaultTenant(tenantA)
	}
	baseA := multiBaseline(t, instances[tenantA.Instance], tenantA.Seed, n)
	baseB := multiBaseline(t, instances[tenantB.Instance], tenantB.Seed, n)

	auth := NewAuthorizer()
	auth.Grant("alpha", tenantA)
	auth.Grant("beta", tenantB)
	gw, err := New(Options{
		Replicas: addrs,
		Instance: tenantA.Instance,
		Seed:     tenantA.Seed,
		Tenants: []TenantOptions{
			{Instance: tenantB.Instance, Seed: tenantB.Seed, RateLimit: quotaRate, Burst: quotaBurst},
		},
		Auth:            auth,
		HedgeDelay:      -1, // hedging off: keep attempt accounting deterministic
		HealthInterval:  50 * time.Millisecond,
		BreakerCooldown: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer gw.Close()

	// The gateway mounts as a tenant-aware wire server: clients reach
	// tenants through Resolve, API keys and all.
	qs, err := cluster.NewQueryServer("127.0.0.1:0", gw)
	if err != nil {
		t.Fatalf("NewQueryServer: %v", err)
	}
	defer qs.Close()

	reg := obs.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		t.Fatalf("RegisterMetrics: %v", err)
	}
	ms := httptest.NewServer(reg.Handler())
	defer ms.Close()

	ctx := context.Background()

	// Auth negatives through the wire: no key, and a key granted only
	// the other tenant.
	unauth, err := cluster.DialLCA(qs.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := unauth.InSolution(ctx, 0); !errors.Is(err, cluster.ErrRemote) ||
		!strings.Contains(err.Error(), "unauthorized") {
		t.Fatalf("keyless query: error = %v, want remote unauthorized", err)
	}
	unauth.Close()
	crossed, err := cluster.DialLCA(qs.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	crossed.SetAPIKey("alpha")
	if _, err := crossed.InSolutionTenant(ctx, tenantB, 0); !errors.Is(err, cluster.ErrRemote) ||
		!strings.Contains(err.Error(), "unauthorized") {
		t.Fatalf("cross-tenant key: error = %v, want remote unauthorized", err)
	}
	crossed.Close()

	// The storm: per tenant, `workers` concurrent wire clients issue
	// interleaved point and batch queries over a small item range.
	// Tenant A is unthrottled and every answer must be served; tenant B
	// rides a quota sized well below the offered load, so rejects are
	// expected — but every answer that IS served must still be exact.
	var (
		wg         sync.WaitGroup
		mismatches atomic.Int64
		servedB    atomic.Int64
		rejectedB  atomic.Int64
	)
	fatalCh := make(chan error, 2*workers)
	fatal := func(err error) {
		select {
		case fatalCh <- err:
		default:
		}
	}
	check := func(tid engine.TenantID, base []bool, item int, got bool) {
		if got != base[item] {
			if mismatches.Add(1) <= 5 {
				t.Errorf("tenant %s item %d: got %v, want %v", tid, item, got, base[item])
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(2)
		// Tenant A worker: no SetTenant, so its frames address the
		// gateway's default tenant, and the gateway's own replica frames
		// stay untenanted — the pre-v3 compatibility path, end to end.
		go func(w int) {
			defer wg.Done()
			c, err := cluster.DialLCA(qs.Addr(), 5*time.Second)
			if err != nil {
				fatal(fmt.Errorf("dial A%d: %w", w, err))
				return
			}
			defer c.Close()
			c.SetAPIKey("alpha")
			for q := 0; q < perWorker; q++ {
				item := (w*37 + q*11) % itemRange
				if q%16 == 5 { // sprinkle batches through the stream
					batch := []int{item, (item + 1) % itemRange, (item + 2) % itemRange}
					got, err := c.InSolutionBatch(ctx, batch)
					if err != nil {
						fatal(fmt.Errorf("A%d batch: %w", w, err))
						return
					}
					for k, it := range batch {
						check(tenantA, baseA, it, got[k])
					}
					continue
				}
				got, err := c.InSolution(ctx, item)
				if err != nil {
					fatal(fmt.Errorf("A%d query: %w", w, err))
					return
				}
				check(tenantA, baseA, item, got)
			}
		}(w)
		// Tenant B worker: v3 tenanted frames, quota-throttled.
		go func(w int) {
			defer wg.Done()
			c, err := cluster.DialLCA(qs.Addr(), 5*time.Second)
			if err != nil {
				fatal(fmt.Errorf("dial B%d: %w", w, err))
				return
			}
			defer c.Close()
			c.SetAPIKey("beta")
			c.SetTenant(tenantB)
			for q := 0; q < perWorker; q++ {
				item := (w*53 + q*7) % itemRange
				got, err := c.InSolution(ctx, item)
				if isRemoteQuotaReject(err) {
					rejectedB.Add(1)
					continue
				}
				if err != nil {
					fatal(fmt.Errorf("B%d query: %w", w, err))
					return
				}
				servedB.Add(1)
				check(tenantB, baseB, item, got)
			}
		}(w)
	}

	// Kill one replica mid-stream: its breaker must trip and traffic
	// must fail over with zero surfaced errors and zero wrong bits.
	time.Sleep(100 * time.Millisecond)
	servers[0].Close()
	wg.Wait()
	select {
	case err := <-fatalCh:
		t.Fatalf("worker error: %v", err)
	default:
	}
	if got := mismatches.Load(); got != 0 {
		t.Fatalf("%d cross-checked answers diverged from tenant baselines", got)
	}
	if servedB.Load() == 0 || rejectedB.Load() == 0 {
		t.Fatalf("tenant B served = %d rejected = %d; want both nonzero", servedB.Load(), rejectedB.Load())
	}

	// Deterministic per-tenant cache hits: after a quota refill pause,
	// two sequential same-item queries per tenant — the second is a hit.
	time.Sleep(300 * time.Millisecond)
	seq, err := cluster.DialLCA(qs.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer seq.Close()
	seq.SetAPIKey("beta")
	for j := 0; j < 2; j++ {
		got, err := seq.InSolutionTenant(ctx, tenantB, 3)
		if err != nil {
			t.Fatalf("sequential B query: %v", err)
		}
		check(tenantB, baseB, 3, got)
	}

	// The health loop must notice the kill: the dead replica's breaker
	// trips and it leaves the healthy set.
	deadline := time.Now().Add(2 * time.Second)
	for len(gw.Healthy()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("Healthy() = %v after replica kill, want 2 members", gw.Healthy())
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := gw.Metrics()
	if m.BreakerTrips == 0 {
		t.Errorf("BreakerTrips = %d after replica kill, want nonzero", m.BreakerTrips)
	}
	if m.AuthRejects < 2 {
		t.Errorf("AuthRejects = %d, want >= 2", m.AuthRejects)
	}
	ma, ok := gw.TenantMetrics(tenantA)
	if !ok || ma.Queries == 0 || ma.BatchQueries == 0 || ma.CacheHits == 0 {
		t.Errorf("tenant A metrics = %+v (ok=%v); want queries, batches, and hits", ma, ok)
	}
	mb, ok := gw.TenantMetrics(tenantB)
	if !ok || mb.CacheHits == 0 || mb.QuotaRejects == 0 {
		t.Errorf("tenant B metrics = %+v (ok=%v); want hits and quota rejects", mb, ok)
	}
	if int64(rejectedB.Load()) != mb.QuotaRejects {
		t.Errorf("client-observed rejects %d != counted rejects %d", rejectedB.Load(), mb.QuotaRejects)
	}

	// The same accounting must surface on the HTTP scrape, labeled per
	// tenant.
	resp, err := http.Get(ms.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read scrape: %v", err)
	}
	body := string(raw)
	// Tenant counters are quiescent by now: the scrape must agree with
	// the in-process snapshots exactly.
	for line, want := range map[string]float64{
		fmt.Sprintf(`lcakp_gateway_tenant_queries_total{tenant="%s"}`, tenantA):       float64(ma.Queries),
		fmt.Sprintf(`lcakp_gateway_tenant_cache_hits_total{tenant="%s"}`, tenantB):    float64(mb.CacheHits),
		fmt.Sprintf(`lcakp_gateway_tenant_quota_rejects_total{tenant="%s"}`, tenantB): float64(mb.QuotaRejects),
		"lcakp_gateway_auth_rejects_total":                                            float64(m.AuthRejects),
	} {
		if got := scrapeValue(body, line); got != want {
			t.Errorf("scrape %s = %v, want %v", line, got, want)
		}
	}
	// Breaker counters keep moving (failed half-open probes re-trip), so
	// only monotonicity is checked.
	if got := scrapeValue(body, "lcakp_gateway_breaker_trips_total"); got < float64(m.BreakerTrips) {
		t.Errorf("scrape breaker trips = %v, want >= %d", got, m.BreakerTrips)
	}
	// The dead replica's breaker reads open (2) or, mid-probe, half-open
	// (1) — never closed.
	if got := scrapeValue(body, fmt.Sprintf(`lcakp_gateway_breaker_state{replica="%s"}`, addrs[0])); got < 1 {
		t.Errorf("breaker state for killed replica = %v, want non-closed", got)
	}
}
