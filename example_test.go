package lcakp_test

import (
	"context"
	"fmt"
	"log"

	"lcakp"
)

// ExampleNewLCAKP shows the core loop: build a normalized instance,
// wrap it in oracle access, and answer stateless membership queries.
func ExampleNewLCAKP() {
	items := []lcakp.Item{
		{Profit: 60, Weight: 10},
		{Profit: 100, Weight: 20},
		{Profit: 120, Weight: 30},
		{Profit: 10, Weight: 50},
	}
	inst, err := lcakp.NewInstance(items, 50)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := inst.Normalized()
	if err != nil {
		log.Fatal(err)
	}
	access, err := lcakp.NewSliceOracle(norm)
	if err != nil {
		log.Fatal(err)
	}
	lca, err := lcakp.NewLCAKP(access, lcakp.Params{Epsilon: 0.3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	in, err := lca.Query(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("item 0 in solution:", in)
	// Output: item 0 in solution: true
}

// ExampleLCAKP_QueryBatch answers several queries from one pipeline
// run: the answers are mutually consistent with certainty.
func ExampleLCAKP_QueryBatch() {
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "uniform", N: 200, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		log.Fatal(err)
	}
	lca, err := lcakp.NewLCAKP(access, lcakp.Params{Epsilon: 0.2, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	answers, err := lca.QueryBatch(context.Background(), []int{3, 3, 17})
	if err != nil {
		log.Fatal(err)
	}
	// Duplicate indices within one batch always agree.
	fmt.Println("duplicates agree:", answers[0] == answers[1])
	// Output: duplicates agree: true
}

// ExampleGreedy runs the classical baselines on a tiny instance.
func ExampleGreedy() {
	inst, err := lcakp.NewInstance([]lcakp.Item{
		{Profit: 6, Weight: 2},
		{Profit: 8, Weight: 4},
		{Profit: 2, Weight: 2},
	}, 6)
	if err != nil {
		log.Fatal(err)
	}
	greedy := lcakp.Greedy(inst)
	exact, err := lcakp.Exhaustive(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy=%.0f exact=%.0f\n", greedy.Profit, exact.Profit)
	// Output: greedy=14 exact=14
}

// ExampleGenerateWorkload builds a benchmark family instance with both
// integer (exactly solvable) and normalized (LCA-ready) forms.
func ExampleGenerateWorkload() {
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "subset-sum", N: 100, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("items:", gen.Int.N())
	fmt.Println("normalized:", gen.Float.IsNormalized())
	// Output:
	// items: 100
	// normalized: true
}
