package lcakp_test

import (
	"context"
	"testing"

	"lcakp"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: build, normalize, wrap, query, solve.
func TestFacadeEndToEnd(t *testing.T) {
	items := make([]lcakp.Item, 100)
	for i := range items {
		items[i] = lcakp.Item{
			Profit: float64(1 + i%17),
			Weight: float64(1 + i%11),
		}
	}
	inst, err := lcakp.NewInstance(items, 150)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	norm, err := inst.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	access, err := lcakp.NewSliceOracle(norm)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	counting := lcakp.NewCounting(access)
	lca, err := lcakp.NewLCAKP(counting, lcakp.Params{Epsilon: 0.15, Seed: 11})
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}

	if _, err := lca.Query(context.Background(), 7); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if counting.Samples() == 0 {
		t.Error("query consumed no weighted samples")
	}

	sol, rule, err := lca.Solve(context.Background(), norm)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !sol.Feasible(norm) {
		t.Errorf("infeasible solution (rule %+v)", rule)
	}

	// Baselines run on the same normalized instance.
	greedy := lcakp.Greedy(norm)
	if !greedy.Solution.Feasible(norm) {
		t.Error("greedy infeasible")
	}
	half := lcakp.Half(norm)
	if half.Profit+1e-12 < greedy.Profit/2 {
		t.Errorf("half %v < greedy/2 %v", half.Profit, greedy.Profit/2)
	}
}

// TestFacadeWorkloadsAndFleet drives the workload registry and the
// distributed fleet through the facade.
func TestFacadeWorkloadsAndFleet(t *testing.T) {
	names := lcakp.WorkloadNames()
	if len(names) == 0 {
		t.Fatal("no workloads registered")
	}
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: names[0], N: 200, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	fleet, err := lcakp.NewFleet(access, 2, lcakp.Params{Epsilon: 0.2, Seed: 5})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer fleet.Close()
	rep, err := fleet.CheckConsistency(context.Background(), []int{0, 50, 150})
	if err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if rep.Replicas != 2 || rep.Queries != 3 {
		t.Errorf("report = %+v", rep)
	}
}

// TestFacadeEstimatorSwap verifies the quantile-estimator ablation
// hook is reachable from the public API.
func TestFacadeEstimatorSwap(t *testing.T) {
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "zipf", N: 300, Seed: 2})
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	var est lcakp.QuantileEstimator = lcakp.NaiveQuantile{}
	lca, err := lcakp.NewLCAKP(access, lcakp.Params{Epsilon: 0.2, Seed: 3, Estimator: est})
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	if _, err := lca.Query(context.Background(), 0); err != nil {
		t.Fatalf("Query with naive estimator: %v", err)
	}
}

// TestFacadeSolverWrappers touches every solver wrapper on a small
// instance so the facade stays wired to the implementations.
func TestFacadeSolverWrappers(t *testing.T) {
	items := []lcakp.Item{
		{Profit: 6, Weight: 2},
		{Profit: 8, Weight: 4},
		{Profit: 2, Weight: 2},
	}
	inst, err := lcakp.NewInstance(items, 6)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	opt, err := lcakp.Exhaustive(inst)
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if opt.Profit != 14 {
		t.Errorf("Exhaustive profit = %v, want 14", opt.Profit)
	}
	for name, solve := range map[string]func() (lcakp.Result, error){
		"mitm": func() (lcakp.Result, error) { return lcakp.MeetInTheMiddle(inst) },
		"bnb":  func() (lcakp.Result, error) { return lcakp.BranchAndBound(inst, 0) },
		"fptas": func() (lcakp.Result, error) {
			return lcakp.FPTAS(inst, 0.01)
		},
	} {
		res, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Profit != 14 {
			t.Errorf("%s profit = %v, want 14", name, res.Profit)
		}
	}
	if frac := lcakp.Fractional(inst); frac.Value < 14 {
		t.Errorf("Fractional %v < integral OPT", frac.Value)
	}
	intInst := &lcakp.IntInstance{
		Items:    []lcakp.IntItem{{Profit: 6, Weight: 2}, {Profit: 8, Weight: 4}, {Profit: 2, Weight: 2}},
		Capacity: 6,
	}
	for name, solve := range map[string]func() (lcakp.Result, error){
		"dpw": func() (lcakp.Result, error) { return lcakp.DPByWeight(intInst) },
		"dpp": func() (lcakp.Result, error) { return lcakp.DPByProfit(intInst) },
	} {
		res, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Profit != 14 {
			t.Errorf("%s profit = %v, want 14", name, res.Profit)
		}
	}
}

// TestFacadeRemoteWrappers drives the distributed wrappers end to end.
func TestFacadeRemoteWrappers(t *testing.T) {
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "uniform", N: 100, Seed: 4})
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		t.Fatalf("NewSliceOracle: %v", err)
	}
	srv, err := lcakp.NewInstanceServer("127.0.0.1:0", access)
	if err != nil {
		t.Fatalf("NewInstanceServer: %v", err)
	}
	defer srv.Close()
	remote, err := lcakp.DialInstance(srv.Addr(), 0, 0)
	if err != nil {
		t.Fatalf("DialInstance: %v", err)
	}
	defer remote.Close()
	lca, err := lcakp.NewLCAKP(remote, lcakp.Params{Epsilon: 0.25, Seed: 3})
	if err != nil {
		t.Fatalf("NewLCAKP: %v", err)
	}
	replica, err := lcakp.NewLCAServer("127.0.0.1:0", lca)
	if err != nil {
		t.Fatalf("NewLCAServer: %v", err)
	}
	defer replica.Close()
	client, err := lcakp.DialLCA(replica.Addr(), 0)
	if err != nil {
		t.Fatalf("DialLCA: %v", err)
	}
	defer client.Close()
	if _, err := client.InSolution(context.Background(), 5); err != nil {
		t.Fatalf("InSolution: %v", err)
	}
}
