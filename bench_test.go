// Benchmarks regenerating the reproduction's experiment measurements,
// one benchmark per experiment table/figure (DESIGN.md §4). Each
// benchmark times the experiment's unit of work and reports the
// experiment's headline metric via b.ReportMetric, so `go test
// -bench=. -benchmem` yields the same quantities that cmd/lcabench
// tabulates. The full tables live in EXPERIMENTS.md and are printed by
// `go run ./cmd/lcabench`.
package lcakp_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lcakp"
	"lcakp/internal/avgcase"
	"lcakp/internal/core"
	"lcakp/internal/experiments"
	"lcakp/internal/lowerbound"
	"lcakp/internal/oracle"
	"lcakp/internal/repro"
	"lcakp/internal/rng"
	"lcakp/internal/sim"
	"lcakp/internal/workload"
)

// benchAccess builds a counting oracle over a workload, failing the
// benchmark on error.
func benchAccess(b *testing.B, name string, n int) (*workload.Generated, *lcakp.Counting) {
	b.Helper()
	gen, err := workload.Generate(workload.Spec{Name: name, N: n, Seed: 42})
	if err != nil {
		b.Fatalf("Generate: %v", err)
	}
	slice, err := oracle.NewSliceOracle(gen.Float)
	if err != nil {
		b.Fatalf("NewSliceOracle: %v", err)
	}
	return gen, lcakp.NewCounting(slice)
}

// BenchmarkE1ORReductionOptimal times one OR-reduction game
// (Theorem 3.2 / Figure 1) for the point-query strategy at budget n/4
// and reports the measured success rate.
func BenchmarkE1ORReductionOptimal(b *testing.B) {
	const n = 4096
	strategy := lowerbound.RandomProbe{}
	root := rng.New(1)
	correct := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := root.DeriveIndex("trial", i)
		planted := -1
		if src.Float64() < 0.5 {
			planted = src.Intn(n - 1)
		}
		inst, err := lowerbound.NewORInstance(n, planted, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if strategy.Answer(inst, n/4, src.Derive("s")) == inst.LastInSolution() {
			correct++
		}
	}
	b.ReportMetric(float64(correct)/float64(b.N), "success-rate")
}

// BenchmarkE2ORReductionApprox times the α-approximate variant
// (Theorem 3.3) at α = 0.5.
func BenchmarkE2ORReductionApprox(b *testing.B) {
	const n = 4096
	strategy := lowerbound.RandomProbe{}
	root := rng.New(2)
	correct := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := root.DeriveIndex("trial", i)
		planted := -1
		if src.Float64() < 0.5 {
			planted = src.Intn(n - 1)
		}
		inst, err := lowerbound.NewORInstance(n, planted, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		if strategy.Answer(inst, n/4, src.Derive("s")) == inst.LastInSolution() {
			correct++
		}
	}
	b.ReportMetric(float64(correct)/float64(b.N), "success-rate")
}

// BenchmarkE3MaximalFeasible times one maximal-feasibility game
// (Theorem 3.4): two stateless runs over the hidden-pair distribution
// at budget n/8.
func BenchmarkE3MaximalFeasible(b *testing.B) {
	const n = 4096
	strategy := lowerbound.ProbeAndRank{}
	root := rng.New(3)
	consistent := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := root.DeriveIndex("trial", i)
		inst, err := lowerbound.NewMaximalInstance(n, src.Derive("instance"))
		if err != nil {
			b.Fatal(err)
		}
		shared := src.Derive("seed")
		ai := strategy.Answer(inst, inst.HiddenI(), n/8, shared.Derive("run"))
		aj := strategy.Answer(inst, inst.HiddenJ(), n/8, shared.Derive("run"))
		if inst.ConsistentMaximal(ai, aj) {
			consistent++
		}
	}
	b.ReportMetric(float64(consistent)/float64(b.N), "success-rate")
}

// BenchmarkE4QueryComplexity times one full LCA query (Theorem 4.1 /
// Lemma 4.10): the whole Algorithm 2 pipeline from fresh samples, at
// n = 100k and ε = 0.15, reporting the per-query access count.
func BenchmarkE4QueryComplexity(b *testing.B) {
	gen, counting := benchAccess(b, "zipf", 100_000)
	lca, err := core.NewLCAKP(counting, core.Params{Epsilon: 0.15, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	counting.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lca.Query(context.Background(), i%gen.Float.N()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(counting.Total())/float64(b.N), "accesses/query")
}

// BenchmarkE5Consistency times one pair of independent rule
// computations (Lemma 4.9) and reports the rule agreement rate.
func BenchmarkE5Consistency(b *testing.B) {
	gen, counting := benchAccess(b, "uniform", 2_000)
	lca, err := core.NewLCAKP(counting, core.Params{Epsilon: 0.2, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	_ = gen
	root := rng.New(9)
	agree := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := lca.ComputeRule(context.Background(), root.DeriveIndex("a", i))
		if err != nil {
			b.Fatal(err)
		}
		r2, err := lca.ComputeRule(context.Background(), root.DeriveIndex("b", i))
		if err != nil {
			b.Fatal(err)
		}
		if r1.Equal(r2) {
			agree++
		}
	}
	b.ReportMetric(float64(agree)/float64(b.N), "rule-agreement")
}

// BenchmarkE6Approximation times one LCA solve plus feasibility check
// (Lemmas 4.7–4.8) and reports the solution/greedy profit ratio.
func BenchmarkE6Approximation(b *testing.B) {
	gen, counting := benchAccess(b, "zipf", 500)
	lca, err := core.NewLCAKP(counting, core.Params{Epsilon: 0.1, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	greedy := lcakp.Greedy(gen.Float)
	ratioSum := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, _, err := lca.Solve(context.Background(), gen.Float)
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Feasible(gen.Float) {
			b.Fatal("infeasible solution")
		}
		ratioSum += sol.Profit(gen.Float) / greedy.Profit
	}
	b.ReportMetric(ratioSum/float64(b.N), "lca/greedy-profit")
}

// BenchmarkE7CouponCollector times one Lemma 4.2 collection round (m
// weighted samples at the paper's formula value) and reports the
// all-collected rate.
func BenchmarkE7CouponCollector(b *testing.B) {
	gen, counting := benchAccess(b, "planted-large", 5_000)
	var heavy []int
	delta := 1.0
	for i, it := range gen.Float.Items {
		if it.Profit > 0.02 {
			heavy = append(heavy, i)
			if it.Profit < delta {
				delta = it.Profit
			}
		}
	}
	m, err := core.PaperLargeSampleCount(delta, 1)
	if err != nil {
		b.Fatal(err)
	}
	root := rng.New(4)
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := root.DeriveIndex("trial", i)
		seen := make(map[int]bool, len(heavy))
		for s := 0; s < m; s++ {
			idx, _, err := counting.Sample(context.Background(), src)
			if err != nil {
				b.Fatal(err)
			}
			seen[idx] = true
		}
		all := true
		for _, h := range heavy {
			if !seen[h] {
				all = false
				break
			}
		}
		if all {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "all-collected-rate")
}

// BenchmarkE8RQuantile times one reproducible-quantile pair
// (Theorem 4.5): two fresh-sample runs of the trie estimator with
// shared randomness, reporting the agreement rate.
func BenchmarkE8RQuantile(b *testing.B) {
	const (
		size    = 1 << 12
		samples = 10_000
	)
	est := repro.Trie{Tau: 0.05}
	gen := func(src *rng.Source) []int {
		out := make([]int, samples)
		for i := range out {
			out[i] = src.Intn(size)
		}
		return out
	}
	root := rng.New(5)
	agree := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shared1 := root.DeriveIndex("shared", i)
		shared2 := root.DeriveIndex("shared", i)
		a, err := est.Quantile(gen(root.DeriveIndex("sa", i)), size, 0.7, shared1, nil)
		if err != nil {
			b.Fatal(err)
		}
		c, err := est.Quantile(gen(root.DeriveIndex("sb", i)), size, 0.7, shared2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if a == c {
			agree++
		}
	}
	b.ReportMetric(float64(agree)/float64(b.N), "reproducibility")
}

// BenchmarkE9Distributed times one remote membership query against a
// two-replica TCP fleet (Definitions 2.3–2.4).
func BenchmarkE9Distributed(b *testing.B) {
	gen, counting := benchAccess(b, "zipf", 1_000)
	fleet, err := lcakp.NewFleet(counting, 2, core.Params{Epsilon: 0.25, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := fleet.Clients[i%len(fleet.Clients)]
		if _, err := client.InSolution(context.Background(), i%gen.Float.N()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteQuick runs every experiment end to end in quick mode —
// the one-button regeneration of all tables (expect seconds per
// iteration; run with -benchtime=1x).
func BenchmarkSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if _, err := e.Run(experiments.Config{Quick: true, Seed: 1}); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// BenchmarkSamplerAliasVsPrefix is the sampler ablation called out in
// DESIGN.md §5: O(1) alias draws vs O(log n) prefix-sum draws.
func BenchmarkSamplerAliasVsPrefix(b *testing.B) {
	gen, err := workload.Generate(workload.Spec{Name: "zipf", N: 1_000_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	alias, err := oracle.NewAliasSampler(gen.Float)
	if err != nil {
		b.Fatal(err)
	}
	prefix, err := oracle.NewPrefixSampler(gen.Float)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		sampler oracle.IndexSampler
	}{{"alias", alias}, {"prefix", prefix}} {
		b.Run(tc.name, func(b *testing.B) {
			src := rng.New(2)
			for i := 0; i < b.N; i++ {
				if _, err := tc.sampler.SampleIndex(context.Background(), src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimatorAblation times one quantile call per estimator —
// the consistency-mechanism ablation of DESIGN.md §5.
func BenchmarkEstimatorAblation(b *testing.B) {
	const size = 1 << 12
	src := rng.New(3)
	samples := make([]int, 20_000)
	for i := range samples {
		samples[i] = src.Intn(size)
	}
	for _, est := range []repro.Estimator{
		repro.Naive{},
		repro.Snap{Tau: 0.05},
		repro.Trie{Tau: 0.05},
		repro.Iterated{Tau: 0.05},
		repro.PaddedMedian{Tau: 0.05},
	} {
		b.Run(est.Name(), func(b *testing.B) {
			root := rng.New(4)
			for i := 0; i < b.N; i++ {
				shared := root.DeriveIndex("s", i)
				fresh := root.DeriveIndex("f", i)
				if _, err := est.Quantile(samples, size, 0.6, shared, fresh); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLargeSampleAmplification measures the large-item collection
// step at 1x vs amplified sample counts (DESIGN.md §5 ablation).
func BenchmarkLargeSampleAmplification(b *testing.B) {
	gen, counting := benchAccess(b, "planted-large", 5_000)
	_ = gen
	base, err := core.PaperLargeSampleCount(0.04, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, mult := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("x%d", mult), func(b *testing.B) {
			src := rng.New(6)
			for i := 0; i < b.N; i++ {
				for s := 0; s < base*mult; s++ {
					if _, _, err := counting.Sample(context.Background(), src); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE10ValueEstimate times one run of the IKY12
// value-approximation pipeline (Lemma 4.4) and reports the additive
// error against the exact optimum in units of ε.
func BenchmarkE10ValueEstimate(b *testing.B) {
	const eps = 0.15
	gen, counting := benchAccess(b, "uniform", 500)
	lca, err := core.NewLCAKP(counting, core.Params{Epsilon: eps, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	opt, err := lcakp.DPByWeight(gen.Int)
	if err != nil {
		b.Fatal(err)
	}
	trueOPT := opt.Profit * gen.Scale
	root := rng.New(10)
	errSum := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := lca.EstimateOPT(context.Background(), root.DeriveIndex("run", i))
		if err != nil {
			b.Fatal(err)
		}
		diff := est.Estimate - trueOPT
		if diff < 0 {
			diff = -diff
		}
		errSum += diff / eps
	}
	b.ReportMetric(errSum/float64(b.N), "abs-err/eps")
}

// BenchmarkE11AvgCase times one full-instance decision pass of the
// average-case threshold LCA (Section 5 extension) and reports the
// feasibility rate.
func BenchmarkE11AvgCase(b *testing.B) {
	threshold, err := avgcase.NewThresholdLCA(avgcase.UniformModel{}, avgcase.Calibration{
		CapacityFraction: 0.3,
		Seed:             7,
	})
	if err != nil {
		b.Fatal(err)
	}
	feasible := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gen, err := workload.Generate(workload.Spec{
			Name: "uniform", N: 2_000, Seed: uint64(i), CapacityFraction: 0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		sol := threshold.Solve(gen.Float)
		if sol.Feasible(gen.Float) {
			feasible++
		}
	}
	b.ReportMetric(float64(feasible)/float64(b.N), "feasible-rate")
}

// BenchmarkE12Chaos times one failure-injection simulation run
// (statelessness extension) and reports the surviving availability.
func BenchmarkE12Chaos(b *testing.B) {
	_, counting := benchAccess(b, "zipf", 500)
	availSum := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(counting, sim.Config{
			Replicas:    3,
			Params:      core.Params{Epsilon: 0.25, Seed: 7},
			Queries:     100,
			MTBF:        50 * time.Millisecond,
			RepairTime:  30 * time.Millisecond,
			ServiceTime: 8 * time.Millisecond,
			Seed:        uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		availSum += res.Availability
	}
	b.ReportMetric(availSum/float64(b.N), "availability")
}
