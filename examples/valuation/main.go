// Valuation: estimate the optimal value of a huge Knapsack instance
// without solving — or even reading — it.
//
// This drives the IKY12-style value-approximation pipeline the paper's
// positive result is built on (Lemma 4.4): weighted samples collect the
// heavy items and the efficiency profile of the light ones, a
// constant-size proxy instance Ĩ is built and solved, and OPT(Ĩ) - ε
// approximates the true optimum to additive O(ε) — with a sample count
// independent of the instance size.
//
// The scenario: a freight broker wants to know, in milliseconds, what a
// 200k-shipment manifest is worth under a fixed truck capacity, before
// deciding whether to bid on it. An exact solver needs the whole
// manifest; the estimator needs a few hundred thousand samples at any
// manifest size.
//
// Run with:
//
//	go run ./examples/valuation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lcakp"
	"lcakp/internal/rng"
)

func main() {
	const (
		n   = 200_000
		eps = 0.1
	)

	fmt.Printf("generating manifest of %d shipments...\n", n)
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{
		Name: "inverse", N: n, Seed: 7, CapacityFraction: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		log.Fatal(err)
	}
	counting := lcakp.NewCounting(access)
	lca, err := lcakp.NewLCAKP(counting, lcakp.Params{Epsilon: eps, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	start := time.Now()
	est, err := lca.EstimateOPT(ctx, rng.New(1).Derive("valuation"))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nestimate:   %.4f of total manifest value (additive ±O(ε), ε=%.2f)\n",
		est.Estimate, eps)
	fmt.Printf("built from: a proxy instance of %d items (manifest has %d)\n",
		est.TildeItems, n)
	fmt.Printf("cost:       %d weighted samples, %v\n", counting.Total(), elapsed.Round(time.Millisecond))

	// Reference value for the demo (the estimator never does this):
	// exact DP is hopeless at this n — which is the estimator's whole
	// reason to exist — but the fractional optimum is computable in
	// O(n log n) and coincides with OPT up to one item at this scale.
	start = time.Now()
	frac := lcakp.Fractional(gen.Float)
	fmt.Printf("\nfractional optimum: %.4f (read all %d items in %v)\n",
		frac.Value, n, time.Since(start).Round(time.Millisecond))
	fmt.Printf("absolute error:     %.4f = %.2f x ε (paper bound: additive 6ε = %.2f)\n",
		abs(est.Estimate-frac.Value), abs(est.Estimate-frac.Value)/eps, 6*eps)

	// Two more estimator runs: reproducibility in action.
	for r := 0; r < 2; r++ {
		again, err := lca.EstimateOPT(ctx, rng.New(uint64(50+r)).Derive("valuation"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("independent re-run %d: estimate %.4f (reproducible thresholds)\n",
			r+1, again.Estimate)
	}
}

// abs returns |x|.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
