// Distributed: the deployment the LCA model was designed for.
//
// A single instance server holds a large Zipf-profit instance (think:
// one catalog service). Four LCA replica servers run against it over
// TCP — on different ports here, but nothing would change across
// machines — sharing only a 64-bit seed. A client fans the same
// membership queries out to all replicas in different orders and
// verifies they answer as one, with no coordination, no state, and no
// replica ever having seen more than a sublinear sample of the
// instance.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"

	"lcakp"
)

func main() {
	const (
		n        = 50_000
		replicas = 4
		queries  = 30
		seed     = 7
	)

	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "zipf", N: n, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("starting instance server (n=%d) and %d LCA replicas over TCP...\n", n, replicas)
	fleet, err := lcakp.NewFleet(access, replicas, lcakp.Params{Epsilon: 0.15, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	fmt.Printf("instance store: %s\n", fleet.Instance.Addr())
	for i, r := range fleet.Replicas {
		fmt.Printf("replica %d:      %s\n", i, r.Addr())
	}

	queryIdx := make([]int, queries)
	for i := range queryIdx {
		queryIdx[i] = (i * 104729) % n
	}
	rep, err := fleet.CheckConsistency(context.Background(), queryIdx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d queries x %d replicas (each replica saw a different query order):\n",
		rep.Queries, rep.Replicas)
	fmt.Printf("  unanimous answers: %d/%d (%.1f%%)\n",
		rep.Agreements, rep.Queries, 100*rep.AgreementRate())
	fmt.Printf("  items in solution: %.1f%%\n", 100*rep.YesFraction)
	fmt.Printf("  latency:           %v per query (each query re-runs the full LCA pipeline)\n",
		rep.PerQuery.Round(1000))
}
