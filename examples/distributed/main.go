// Distributed: the deployment the LCA model was designed for.
//
// A single instance server holds a large Zipf-profit instance (think:
// one catalog service). Four LCA replica servers run against it over
// TCP — on different ports here, but nothing would change across
// machines — sharing only a 64-bit seed. A client fans the same
// membership queries out to all replicas in different orders and
// verifies they answer as one, with no coordination, no state, and no
// replica ever having seen more than a sublinear sample of the
// instance.
//
// The second act fronts the fleet with a serving gateway — pooled
// connections, failover, and a deterministic answer cache — served
// over the wire protocol, and kills a replica mid-stream: the
// client-visible stream never errors and never changes an answer,
// because any surviving replica serves the same C(I, r) (Theorem
// 4.1). It closes by scraping the gateway's serving counters over the
// same connection the queries travelled on (MsgMetrics).
//
// The third act is multi-tenant: two catalogs times two seeds — four
// distinct solutions C(I, r) — served through one gateway address by
// one homogeneous replica fleet, each replica deriving any tenant on
// demand from a TenantTable. A replica dies mid-stream and every
// tenant's answers stay bit-identical to its own local baseline.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lcakp"
)

func main() {
	const (
		n        = 50_000
		replicas = 4
		queries  = 30
		seed     = 7
	)

	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "zipf", N: n, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("starting instance server (n=%d) and %d LCA replicas over TCP...\n", n, replicas)
	fleet, err := lcakp.NewFleet(access, replicas, lcakp.Params{Epsilon: 0.15, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	fmt.Printf("instance store: %s\n", fleet.Instance.Addr())
	for i, r := range fleet.Replicas {
		fmt.Printf("replica %d:      %s\n", i, r.Addr())
	}

	queryIdx := make([]int, queries)
	for i := range queryIdx {
		queryIdx[i] = (i * 104729) % n
	}
	rep, err := fleet.CheckConsistency(context.Background(), queryIdx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d queries x %d replicas (each replica saw a different query order):\n",
		rep.Queries, rep.Replicas)
	fmt.Printf("  unanimous answers: %d/%d (%.1f%%)\n",
		rep.Agreements, rep.Queries, 100*rep.AgreementRate())
	fmt.Printf("  items in solution: %.1f%%\n", 100*rep.YesFraction)
	fmt.Printf("  latency:           %v per query (each query re-runs the full LCA pipeline)\n",
		rep.PerQuery.Round(1000))

	// Act two: one gateway address in front of the whole fleet, served
	// over the same wire protocol the replicas speak, with its serving
	// counters registered for scraping. Clients keep a single
	// connection; the gateway pools, fails over, and caches. Mid-stream
	// we kill a replica — the stream must not notice.
	addrs := make([]string, len(fleet.Replicas))
	for i, r := range fleet.Replicas {
		addrs[i] = r.Addr()
	}
	gw, err := lcakp.NewGateway(lcakp.GatewayOptions{Replicas: addrs, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	reg := lcakp.NewMetricsRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		log.Fatal(err)
	}
	front, err := lcakp.NewQueryServer("127.0.0.1:0", gw)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	front.SetRegistry(reg)

	client, err := lcakp.DialLCA(front.Addr(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// The stream visits 2*queries distinct items (cache misses), then
	// revisits them all (cache hits); the kill lands while misses are
	// still flowing, so the gateway must fail over live RPCs.
	stream := 4 * queries
	fmt.Printf("\ngateway at %s over %d replicas; streaming %d queries, killing replica 0 mid-stream...\n",
		front.Addr(), len(addrs), stream)
	ctx := context.Background()
	errs := 0
	for q := 0; q < stream; q++ {
		if q == queries { // mid-stream, mid-warmup: a replica crashes
			fleet.Replicas[0].Close()
		}
		item := ((q % (2 * queries)) * 104729) % n
		if _, err := client.InSolution(ctx, item); err != nil {
			errs++
		}
	}
	m := gw.Metrics()
	fmt.Printf("  caller-visible errors: %d/%d (death absorbed: %d failovers, %d retries, health checks)\n",
		errs, stream, m.Failovers, m.Retries)
	fmt.Printf("  cache hit rate:        %.1f%% — answers are immutable, so caching is always safe\n",
		100*m.CacheHitRate())
	fmt.Printf("  healthy replicas:      %d of %d\n", len(gw.Healthy()), len(addrs))

	// The same connection that streamed the queries scrapes the
	// gateway's metrics over the wire protocol — no HTTP port needed.
	exposition, err := client.ScrapeMetrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwire-scraped metrics snapshot (lcakp_gateway_*):\n")
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "lcakp_gateway_") &&
			(strings.Contains(line, "_failovers_total") ||
				strings.Contains(line, "_cache_hits_total") ||
				strings.Contains(line, "_queries_total") ||
				strings.Contains(line, "_healthy_replicas")) {
			fmt.Printf("  %s\n", line)
		}
	}

	actThree()
}

// actThree is multi-tenant serving: two catalogs x two seeds = four
// solutions C(I, r) behind one gateway address. Every replica can
// derive every tenant on demand (a TenantTable keyed by (instance,
// seed)), so the fleet stays homogeneous — kill any replica and any
// survivor answers any tenant, bit-for-bit.
func actThree() {
	const (
		nSmall   = 20_000
		replicas = 3
		perTen   = 20
	)

	// Two instance "catalogs", addressed by an instance hash.
	catalogs := make(map[uint64]lcakp.Access)
	for hash, spec := range map[uint64]lcakp.WorkloadSpec{
		1: {Name: "zipf", N: nSmall, Seed: 99},
		2: {Name: "uniform", N: nSmall, Seed: 31},
	} {
		gen, err := lcakp.GenerateWorkload(spec)
		if err != nil {
			log.Fatal(err)
		}
		access, err := lcakp.NewSliceOracle(gen.Float)
		if err != nil {
			log.Fatal(err)
		}
		catalogs[hash] = access
	}

	tenants := []lcakp.TenantID{
		{Instance: 1, Seed: 7}, {Instance: 1, Seed: 8},
		{Instance: 2, Seed: 7}, {Instance: 2, Seed: 8},
	}
	params := func(id lcakp.TenantID) lcakp.Params {
		return lcakp.Params{Epsilon: 0.25, Seed: id.Seed}
	}

	// Local baselines: the ground truth each tenant's answers must match.
	baselines := make(map[lcakp.TenantID]*lcakp.LCAKP)
	for _, id := range tenants {
		lca, err := lcakp.NewLCAKP(catalogs[id.Instance], params(id))
		if err != nil {
			log.Fatal(err)
		}
		baselines[id] = lca
	}

	// A homogeneous multi-tenant fleet: each replica derives any tenant
	// on first query from the shared catalogs.
	factory := func(ctx context.Context, id lcakp.TenantID) (lcakp.TenantState, error) {
		access, ok := catalogs[id.Instance]
		if !ok {
			return lcakp.TenantState{}, fmt.Errorf("no catalog with hash %d", id.Instance)
		}
		lca, err := lcakp.NewLCAKP(access, params(id))
		if err != nil {
			return lcakp.TenantState{}, err
		}
		return lcakp.TenantState{Engine: lcakp.NewEngine(lca)}, nil
	}
	addrs := make([]string, replicas)
	servers := make([]*lcakp.MultiLCAServer, replicas)
	for i := range servers {
		table := lcakp.NewTenantTable(factory, 16)
		srv, err := lcakp.NewMultiLCAServer("127.0.0.1:0", table)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetDefaultTenant(tenants[0])
		defer srv.Close()
		defer table.Close()
		servers[i] = srv
		addrs[i] = srv.Addr()
	}

	// One gateway serves all four tenants; tenants[0] doubles as the
	// default for untagged (pre-tenancy) clients.
	opts := lcakp.GatewayOptions{
		Replicas: addrs,
		Instance: tenants[0].Instance,
		Seed:     tenants[0].Seed,
	}
	for _, id := range tenants[1:] {
		opts.Tenants = append(opts.Tenants,
			lcakp.GatewayTenantOptions{Instance: id.Instance, Seed: id.Seed})
	}
	gw, err := lcakp.NewGateway(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	front, err := lcakp.NewQueryServer("127.0.0.1:0", gw)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()

	fmt.Printf("\nmulti-tenant gateway at %s: %d tenants (2 catalogs x 2 seeds) over %d replicas\n",
		front.Addr(), len(tenants), replicas)

	// One connection per tenant, interleaved queries, a replica killed
	// mid-stream — and every answer must equal the local baseline bit
	// for bit (Theorem 4.1, per tenant).
	ctx := context.Background()
	clients := make(map[lcakp.TenantID]*lcakp.LCAClient)
	for _, id := range tenants {
		c, err := lcakp.DialLCA(front.Addr(), 0)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		c.SetTenant(id)
		clients[id] = c
	}
	mismatches, errs := 0, 0
	for q := 0; q < perTen; q++ {
		if q == perTen/2 {
			servers[0].Close() // mid-stream crash, all four tenants affected
		}
		item := (q * 104729) % nSmall
		for _, id := range tenants {
			want, err := baselines[id].Query(ctx, item)
			if err != nil {
				log.Fatal(err)
			}
			got, err := clients[id].InSolution(ctx, item)
			if err != nil {
				errs++
				continue
			}
			if got != want {
				mismatches++
			}
		}
	}
	fmt.Printf("  %d queries x %d tenants through one gateway, replica 0 killed mid-stream:\n",
		perTen, len(tenants))
	fmt.Printf("  answers differing from each tenant's local baseline: %d (errors: %d)\n",
		mismatches, errs)

	fmt.Printf("  per-tenant serving counters:\n")
	for _, id := range gw.Tenants() {
		tm, ok := gw.TenantMetrics(id)
		if !ok {
			continue
		}
		fmt.Printf("    tenant %-8s %3d queries, %2d cache hits\n", id.String()+":", tm.Queries, tm.CacheHits)
	}
}
