// Distributed: the deployment the LCA model was designed for.
//
// A single instance server holds a large Zipf-profit instance (think:
// one catalog service). Four LCA replica servers run against it over
// TCP — on different ports here, but nothing would change across
// machines — sharing only a 64-bit seed. A client fans the same
// membership queries out to all replicas in different orders and
// verifies they answer as one, with no coordination, no state, and no
// replica ever having seen more than a sublinear sample of the
// instance.
//
// The second act fronts the fleet with a serving gateway — pooled
// connections, failover, and a deterministic answer cache — served
// over the wire protocol, and kills a replica mid-stream: the
// client-visible stream never errors and never changes an answer,
// because any surviving replica serves the same C(I, r) (Theorem
// 4.1). It closes by scraping the gateway's serving counters over the
// same connection the queries travelled on (MsgMetrics).
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lcakp"
)

func main() {
	const (
		n        = 50_000
		replicas = 4
		queries  = 30
		seed     = 7
	)

	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "zipf", N: n, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("starting instance server (n=%d) and %d LCA replicas over TCP...\n", n, replicas)
	fleet, err := lcakp.NewFleet(access, replicas, lcakp.Params{Epsilon: 0.15, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	fmt.Printf("instance store: %s\n", fleet.Instance.Addr())
	for i, r := range fleet.Replicas {
		fmt.Printf("replica %d:      %s\n", i, r.Addr())
	}

	queryIdx := make([]int, queries)
	for i := range queryIdx {
		queryIdx[i] = (i * 104729) % n
	}
	rep, err := fleet.CheckConsistency(context.Background(), queryIdx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d queries x %d replicas (each replica saw a different query order):\n",
		rep.Queries, rep.Replicas)
	fmt.Printf("  unanimous answers: %d/%d (%.1f%%)\n",
		rep.Agreements, rep.Queries, 100*rep.AgreementRate())
	fmt.Printf("  items in solution: %.1f%%\n", 100*rep.YesFraction)
	fmt.Printf("  latency:           %v per query (each query re-runs the full LCA pipeline)\n",
		rep.PerQuery.Round(1000))

	// Act two: one gateway address in front of the whole fleet, served
	// over the same wire protocol the replicas speak, with its serving
	// counters registered for scraping. Clients keep a single
	// connection; the gateway pools, fails over, and caches. Mid-stream
	// we kill a replica — the stream must not notice.
	addrs := make([]string, len(fleet.Replicas))
	for i, r := range fleet.Replicas {
		addrs[i] = r.Addr()
	}
	gw, err := lcakp.NewGateway(lcakp.GatewayOptions{Replicas: addrs, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	reg := lcakp.NewMetricsRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		log.Fatal(err)
	}
	front, err := lcakp.NewQueryServer("127.0.0.1:0", gw)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	front.SetRegistry(reg)

	client, err := lcakp.DialLCA(front.Addr(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// The stream visits 2*queries distinct items (cache misses), then
	// revisits them all (cache hits); the kill lands while misses are
	// still flowing, so the gateway must fail over live RPCs.
	stream := 4 * queries
	fmt.Printf("\ngateway at %s over %d replicas; streaming %d queries, killing replica 0 mid-stream...\n",
		front.Addr(), len(addrs), stream)
	ctx := context.Background()
	errs := 0
	for q := 0; q < stream; q++ {
		if q == queries { // mid-stream, mid-warmup: a replica crashes
			fleet.Replicas[0].Close()
		}
		item := ((q % (2 * queries)) * 104729) % n
		if _, err := client.InSolution(ctx, item); err != nil {
			errs++
		}
	}
	m := gw.Metrics()
	fmt.Printf("  caller-visible errors: %d/%d (death absorbed: %d failovers, %d retries, health checks)\n",
		errs, stream, m.Failovers, m.Retries)
	fmt.Printf("  cache hit rate:        %.1f%% — answers are immutable, so caching is always safe\n",
		100*m.CacheHitRate())
	fmt.Printf("  healthy replicas:      %d of %d\n", len(gw.Healthy()), len(addrs))

	// The same connection that streamed the queries scrapes the
	// gateway's metrics over the wire protocol — no HTTP port needed.
	exposition, err := client.ScrapeMetrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwire-scraped metrics snapshot (lcakp_gateway_*):\n")
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "lcakp_gateway_") &&
			(strings.Contains(line, "_failovers_total") ||
				strings.Contains(line, "_cache_hits_total") ||
				strings.Contains(line, "_queries_total") ||
				strings.Contains(line, "_healthy_replicas")) {
			fmt.Printf("  %s\n", line)
		}
	}
}
