// Chaos: crash LCA replicas on purpose and watch nothing break.
//
// The quiet superpower of the LCA model is that replicas hold NO
// state: no solution cache, no session, no replication log. A replica
// that crashes and restarts is instantly as good as new, and any other
// replica can answer any query in its place — consistently, because
// answers are a function of (instance, seed), not of server history.
//
// This example runs a deterministic discrete-event simulation with
// real LCA replicas (only time and failures are simulated): a fleet
// under increasingly brutal crash/restart churn, with a load balancer
// failing queries over. Watch availability degrade only as far as
// "was anyone up?", retries stay cheap, and answer consistency across
// replicas and across time stay at 100%.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lcakp"
	"lcakp/internal/core"
	"lcakp/internal/sim"
)

func main() {
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{Name: "zipf", N: 2000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fleet under churn (600 queries each; MTBF = mean time between crashes):")
	fmt.Printf("%-9s %-9s %-8s %-13s %-12s %-13s %s\n",
		"replicas", "mtbf", "crashes", "availability", "consistency", "mean-retries", "p99")

	type scenario struct {
		replicas int
		mtbf     time.Duration
	}
	for _, sc := range []scenario{
		{3, 0},                     // calm seas
		{3, 80 * time.Millisecond}, // occasional crashes
		{3, 25 * time.Millisecond}, // constant churn
		{8, 25 * time.Millisecond}, // churn, but more replicas
		{1, 50 * time.Millisecond}, // no failover target: the control
	} {
		s, err := sim.New(access, sim.Config{
			Replicas:        sc.replicas,
			Params:          core.Params{Epsilon: 0.2, Seed: 11},
			Queries:         600,
			ArrivalInterval: 12 * time.Millisecond,
			MTBF:            sc.mtbf,
			RepairTime:      40 * time.Millisecond,
			ServiceTime:     6 * time.Millisecond,
			Seed:            99,
			Policy:          sim.PolicyLeastBusy,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		mtbf := "none"
		if sc.mtbf > 0 {
			mtbf = sc.mtbf.String()
		}
		fmt.Printf("%-9d %-9s %-8d %-13.3f %-12.3f %-13.3f %v\n",
			sc.replicas, mtbf, res.Crashes, res.Availability,
			res.Consistency, res.MeanRetries, res.P99.Round(time.Millisecond))
	}

	fmt.Println("\nno recovery protocol ran: restarted replicas are instantly serving,")
	fmt.Println("and every answer, from any replica at any time, follows one solution.")
}
