// Adversarial: the impossibility theorems, played live.
//
// Part 1 (Theorems 3.2/3.3): the OR reduction. A Knapsack instance
// hides a single high-profit item at a random position; deciding
// whether the "safe" last item is optimal requires finding the needle.
// Watch a point-query strategy stay near coin-flipping until its
// budget is a constant fraction of n — and a weighted-sampling
// strategy nail it with five samples.
//
// Part 2 (Theorem 3.4): the maximal-feasibility game. Two hidden
// heavy items force any stateless algorithm into inconsistent answers
// unless it scans a constant fraction of the instance.
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"lcakp/internal/lowerbound"
	"lcakp/internal/report"
)

func main() {
	const (
		n      = 4096
		trials = 2000
	)
	const seed uint64 = 2025

	fmt.Printf("Part 1 — OR reduction (Theorem 3.2), n=%d, %d trials per row\n", n, trials)
	fmt.Printf("%-20s %-10s %-10s\n", "strategy", "budget", "success")
	probe := lowerbound.RandomProbe{}
	for _, budget := range []int{n / 64, n / 16, n / 4, n / 2, n} {
		res, err := lowerbound.PlayORGame(probe, n, budget, trials, 0.5, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %-10d %.3f\n", probe.Name(), budget, res.Success.Estimate)
	}
	sampling := lowerbound.WeightedSampling{}
	res, err := lowerbound.PlayORGame(sampling, n, 5, trials, 0.5, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %-10d %.3f   <- the paper's circumvention\n",
		sampling.Name(), 5, res.Success.Estimate)

	// The success curves, as a terminal figure.
	probeCurve := &report.Series{Name: "random-probe (point queries)"}
	sampleCurve := &report.Series{Name: "weighted-sampling (5 samples)"}
	for frac := 1; frac <= 16; frac++ {
		budget := n * frac / 16
		pr, err := lowerbound.PlayORGame(probe, n, budget, 600, 0.5, seed+1)
		if err != nil {
			log.Fatal(err)
		}
		probeCurve.Add(float64(budget)/float64(n), pr.Success.Estimate)
		sa, err := lowerbound.PlayORGame(sampling, n, 5, 600, 0.5, seed+uint64(frac))
		if err != nil {
			log.Fatal(err)
		}
		sampleCurve.Add(float64(budget)/float64(n), sa.Success.Estimate)
	}
	plot := report.NewPlot("success probability vs budget/n (Theorem 3.2 / Figure 1)")
	plot.Add(probeCurve)
	plot.Add(sampleCurve)
	fmt.Println()
	fmt.Print(plot.String())

	fmt.Printf("\nPart 2 — maximal-feasibility game (Theorem 3.4), n=%d\n", n)
	fmt.Printf("(success requires >= 4/5 = 0.800 to beat the theorem)\n")
	fmt.Printf("%-10s %-10s %-10s\n", "budget", "budget/n", "success")
	strategy := lowerbound.ProbeAndRank{}
	for _, budget := range []int{n / 64, n / 16, n / 4, n / 2, (3 * n) / 4, n} {
		res, err := lowerbound.PlayMaximalGame(strategy, n, budget, trials, seed)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if res.Success.Estimate >= 0.8 {
			marker = "  <- crosses 4/5 only here"
		}
		fmt.Printf("%-10d %-10.3f %.3f%s\n",
			budget, float64(budget)/float64(n), res.Success.Estimate, marker)
	}
}
