// Portfolio: a domain scenario for the weighted-sampling LCA.
//
// An ad exchange holds a catalog of one million candidate placements.
// Each placement has an expected revenue (profit) and a budget cost
// (weight); the campaign has a fixed budget (capacity). Revenue is
// Zipf-distributed: a few blockbuster placements dominate, followed by
// a very long tail — exactly the skewed regime where profit-weighted
// sampling finds everything that matters in a few thousand draws.
//
// Bid servers answer "should placement #i be bought?" independently,
// per request, with no shared state and no precomputed plan — yet all
// answer according to one consistent portfolio, because they share a
// seed. This example runs two such bid servers in-process and times
// their (stateless!) decisions over the million-item catalog.
//
// Run with:
//
//	go run ./examples/portfolio
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lcakp"
)

func main() {
	const (
		catalog = 1_000_000
		eps     = 0.1
		seed    = 424242
	)

	fmt.Printf("generating catalog of %d placements (Zipf revenue, uniform cost)...\n", catalog)
	gen, err := lcakp.GenerateWorkload(lcakp.WorkloadSpec{
		Name:             "zipf",
		N:                catalog,
		Seed:             1,
		CapacityFraction: 0.2, // budget covers ~20% of total cost
	})
	if err != nil {
		log.Fatal(err)
	}

	access, err := lcakp.NewSliceOracle(gen.Float)
	if err != nil {
		log.Fatal(err)
	}
	counting := lcakp.NewCounting(access)

	params := lcakp.Params{Epsilon: eps, Seed: seed}
	bidServerA, err := lcakp.NewLCAKP(counting, params)
	if err != nil {
		log.Fatal(err)
	}
	bidServerB, err := lcakp.NewLCAKP(counting, params)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate bid requests for a mix of head and tail placements.
	ctx := context.Background()
	requests := []int{0, 1, 10, 500, 25_000, 400_000, 999_999}
	fmt.Printf("\n%-10s %-14s %-10s %-10s %-7s\n", "placement", "revenue-share", "server-A", "server-B", "agree")
	start := time.Now()
	agreeCount := 0
	for _, i := range requests {
		a, err := bidServerA.Query(ctx, i)
		if err != nil {
			log.Fatal(err)
		}
		b, err := bidServerB.Query(ctx, i)
		if err != nil {
			log.Fatal(err)
		}
		if a == b {
			agreeCount++
		}
		fmt.Printf("%-10d %-14.6f %-10v %-10v %-7v\n",
			i, gen.Float.Items[i].Profit, a, b, a == b)
	}
	elapsed := time.Since(start)

	queries := 2 * len(requests)
	fmt.Printf("\n%d stateless decisions in %v (%v per decision)\n",
		queries, elapsed.Round(time.Millisecond), (elapsed / time.Duration(queries)).Round(time.Microsecond))
	fmt.Printf("agreement: %d/%d; access cost: %d samples + %d point queries — the catalog has %d items\n",
		agreeCount, len(requests), counting.Samples(), counting.Queries(), catalog)
	fmt.Printf("each decision touched %.2f%% of the catalog\n",
		100*float64(counting.Total())/float64(queries)/float64(catalog))
}
