// Quickstart: the smallest end-to-end use of the public API.
//
// It builds a Knapsack instance, wraps it in the oracle access the LCA
// needs, answers a few membership queries statelessly, and then
// demonstrates the defining LCA property: a *second, independent*
// algorithm instance with the same seed answers identically, without
// any shared state or communication.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"lcakp"
)

func main() {
	// A small instance: profits and weights in arbitrary units; the
	// library normalizes total profit and weight to 1 as the paper's
	// model requires.
	items := make([]lcakp.Item, 0, 200)
	for i := 0; i < 200; i++ {
		items = append(items, lcakp.Item{
			Profit: float64(1 + (i*7919)%100),
			Weight: float64(1 + (i*104729)%100),
		})
	}
	inst, err := lcakp.NewInstance(items, 2500)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := inst.Normalized()
	if err != nil {
		log.Fatal(err)
	}

	// Oracle access: point queries + profit-weighted sampling. This is
	// all the LCA ever sees of the instance.
	access, err := lcakp.NewSliceOracle(norm)
	if err != nil {
		log.Fatal(err)
	}

	// Two independent LCA instances sharing only Epsilon and Seed.
	const seed = 2025
	params := lcakp.Params{Epsilon: 0.1, Seed: seed}
	alice, err := lcakp.NewLCAKP(access, params)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := lcakp.NewLCAKP(access, params)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	fmt.Println("item   alice  bob    (independent stateless runs, shared seed)")
	agreements := 0
	queries := []int{3, 17, 42, 99, 123, 150, 180, 199}
	for _, i := range queries {
		a, err := alice.Query(ctx, i)
		if err != nil {
			log.Fatal(err)
		}
		b, err := bob.Query(ctx, i)
		if err != nil {
			log.Fatal(err)
		}
		if a == b {
			agreements++
		}
		fmt.Printf("%-6d %-6v %-6v\n", i, a, b)
	}
	fmt.Printf("\n%d/%d answers agree across the two instances\n", agreements, len(queries))

	// For validation only (an LCA never does this): materialize the
	// full solution the answers are consistent with and check it.
	sol, _, err := alice.Solve(ctx, norm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("underlying solution: %d items, profit %.4f, weight %.4f of capacity %.4f, feasible=%v\n",
		sol.Len(), sol.Profit(norm), sol.Weight(norm), norm.Capacity, sol.Feasible(norm))
}
